"""T2 — Theorem 2: SCC ⇔ Comp-C on stack configurations.

Randomized stack executions at several depths and conflict rates; the
per-schedule SCC verdict (Def. 22) and the reduction's Comp-C verdict
must agree on every instance, and the ensemble must exercise both
verdicts.  The benchmark times one ensemble pass at depth 3.
"""

from repro.analysis.tables import banner, format_table
from repro.analysis.theorems import agreement_experiment, theorem2_rows
from repro.criteria.stack import is_scc
from repro.workloads.topologies import stack_topology


def run_depth3():
    return agreement_experiment(
        stack_topology(3), is_scc, "stack depth 3", trials=60, seed=0
    )


def test_bench_t2_stack(benchmark, emit):
    benchmark.pedantic(run_depth3, rounds=2, iterations=1)
    rows = theorem2_rows(depths=(2, 3, 4, 5), trials=60, seed=0)

    for row in rows:
        assert row.disagreements == 0, row
        assert 0 < row.accepted < row.trials, (
            f"{row.label}: ensemble did not exercise both verdicts"
        )

    table = format_table(
        ["configuration", "instances", "agreements", "Comp-C accepted"],
        [[r.label, r.trials, r.agreements, r.accepted] for r in rows],
    )
    emit(
        "T2",
        banner("T2: Theorem 2 — SCC <=> Comp-C on stacks")
        + "\n"
        + table
        + "\npaper claim reproduced: 100% agreement on every depth.",
    )
