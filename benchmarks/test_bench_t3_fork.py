"""T3 — Theorem 3: FCC ⇔ Comp-C on fork configurations.

Randomized fork executions over several branch counts; the FCC verdict
(Def. 24: coordinator CC + joint branch-order acyclicity) must agree
with Comp-C on every instance.  The benchmark times one ensemble pass.
"""

from repro.analysis.tables import banner, format_table
from repro.analysis.theorems import agreement_experiment, theorem3_rows
from repro.criteria.fork import is_fcc
from repro.workloads.topologies import fork_topology


def run_fork3():
    return agreement_experiment(
        fork_topology(3), is_fcc, "fork x3", trials=60, seed=0, roots=4
    )


def test_bench_t3_fork(benchmark, emit):
    benchmark.pedantic(run_fork3, rounds=2, iterations=1)
    rows = theorem3_rows(branch_counts=(2, 3, 5), trials=60, seed=0)

    for row in rows:
        assert row.disagreements == 0, row
        assert 0 < row.accepted <= row.trials

    table = format_table(
        ["configuration", "instances", "agreements", "Comp-C accepted"],
        [[r.label, r.trials, r.agreements, r.accepted] for r in rows],
    )
    emit(
        "T3",
        banner("T3: Theorem 3 — FCC <=> Comp-C on forks")
        + "\n"
        + table
        + "\npaper claim reproduced: 100% agreement on every branch count.",
    )
