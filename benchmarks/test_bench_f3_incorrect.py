"""F3 — Figure 3: the incorrect execution.

Regenerates the paper's rejection walk-through: the reduction builds the
level-1 and level-2 fronts (pulling the crossed dependencies up
pessimistically because the pairs originate on different schedules) and
then fails — no calculation exists for T1 at the root step.  The
counterexample cycle is validated edge by edge against the model
(Theorem 1, only-if direction).  The benchmark times detection.
"""

from repro.analysis.tables import banner
from repro.core.certificates import validate_failure_certificate
from repro.core.reduction import reduce_to_roots
from repro.figures import figure3_system
from repro.viz.ascii_art import render_front


def detect():
    system = figure3_system()
    return reduce_to_roots(system)


def test_bench_f3_incorrect(benchmark, emit):
    result = benchmark(detect)

    # --- assertions: rejected exactly where the paper says -------------
    assert not result.succeeded
    assert result.failure.stage == "calculation"
    assert result.failure.level == 3  # fails building the level-3 front
    assert len(result.fronts) == 3  # levels 0..2 were constructed
    assert set(result.failure.cycle) == {"T1", "T2"}
    f2 = result.fronts[2]
    assert ("p", "r") in f2.observed and ("s", "q") in f2.observed

    certificate = validate_failure_certificate(result)
    assert certificate, certificate.reasons

    lines = [banner("F3: Figure 3 — incorrect execution")]
    for front in result.fronts:
        lines.append(render_front(front))
    lines.append("")
    lines.append(f"REJECTED: {result.failure.describe()}")
    lines.append("validated counterexample cycle:")
    for a, b, why in certificate.edges:
        lines.append(f"  {a} -> {b}   [{why}]")
    lines.append(
        "\npaper claim reproduced: reduction reaches the level-2 front, "
        "then no isolated execution exists for T1."
    )
    emit("F3", "\n".join(lines))
