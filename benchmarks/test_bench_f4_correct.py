"""F4 — Figure 4: the correct execution (forgotten orders).

Same leaf-level behaviour as Figure 3, but the two roots are
transactions of one top schedule that declares their subtransactions
non-conflicting — the schedule vouches for commutativity, the pulled-up
orders neither constrain the root calculation nor survive the final
pull-up (§3.7), and the reduction completes to a serial front whose
Def.-19 containment is verified constructively.  The benchmark times
acceptance.
"""

from repro.analysis.tables import banner
from repro.core.reduction import reduce_to_roots
from repro.core.serial import serial_front_of, verify_theorem1_if_direction
from repro.figures import figure3_system, figure4_system
from repro.viz.ascii_art import render_front


def accept():
    system = figure4_system()
    return reduce_to_roots(system)


def test_bench_f4_correct(benchmark, emit):
    result = benchmark(accept)

    # --- assertions ----------------------------------------------------
    assert result.succeeded
    f2 = result.fronts[2]
    # The crossed orders are pulled into the level-2 front (their
    # endpoints conflicted on SP/SQ)...
    assert ("p", "r") in f2.observed and ("s", "q") in f2.observed
    # ...but are forgotten past SA: the root front has no observed order.
    final = result.final_front
    assert len(final.observed) == 0
    check = verify_theorem1_if_direction(result)
    assert check, check.reasons

    # Same leaves as Figure 3 — the verdict flip is purely the top
    # schedule's semantic knowledge.
    fig3 = figure3_system()
    fig4 = figure4_system()
    assert set(fig3.leaves) == set(fig4.leaves)

    serial = serial_front_of(result)
    lines = [banner("F4: Figure 4 — correct execution, forgotten orders")]
    for front in result.fronts:
        lines.append(render_front(front))
    lines.append("")
    lines.append(
        "forgotten at the meeting schedule SA: (p, r) and (s, q) — "
        "identical leaf behaviour to Figure 3, opposite verdict."
    )
    lines.append(
        "ACCEPTED: serial witness "
        + " << ".join(serial.serialization())
        + " (Def. 19 containment verified)"
    )
    emit("F4", "\n".join(lines))
