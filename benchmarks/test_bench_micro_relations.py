"""Micro-benchmarks for the relation engine.

Everything the checker does reduces to operations on
:class:`repro.core.orders.Relation` — transitive closure, cycle
detection, quotienting, topological sorting.  These micro-benchmarks
track their costs on representative graph shapes so a regression in the
engine is visible independently of the end-to-end numbers in P2.

The closure-grid benchmark additionally races the packed-bitset engine
against the retired dict-of-sets engine (kept as
``tests/core/dict_engine.py`` for differential testing) on dense grid
DAGs — the workload whose closure cost motivated the rewrite — and
hard-asserts the bitset engine wins by a wide margin on the largest
grid.  The ratios land in ``BENCH_MICRO_RELATIONS.json``.
"""

import random
import time

import pytest

from repro.analysis.tables import banner, format_table
from repro.core.orders import Relation


def _random_dag(nodes: int, edges: int, seed: int = 0) -> Relation:
    rng = random.Random(seed)
    relation = Relation(elements=range(nodes))
    added = 0
    while added < edges:
        a, b = rng.randrange(nodes), rng.randrange(nodes)
        if a < b:
            relation.add(a, b)
            added += 1
    return relation


DAG = _random_dag(120, 400)
CHAIN = Relation([(i, i + 1) for i in range(200)])
CYCLIC = _random_dag(120, 400)
CYCLIC.add(119, 0)


def test_bench_transitive_closure(benchmark):
    closed = benchmark(DAG.transitive_closure)
    assert closed.is_transitive()


def test_bench_chain_closure(benchmark):
    closed = benchmark(CHAIN.transitive_closure)
    assert (0, 200) in closed


def test_bench_cycle_detection_acyclic(benchmark):
    assert benchmark(DAG.find_cycle) is None


def test_bench_cycle_detection_cyclic(benchmark):
    cycle = benchmark(CYCLIC.find_cycle)
    assert cycle is not None


def test_bench_topological_sort(benchmark):
    order = benchmark(DAG.topological_sort)
    assert len(order) == 120


def test_bench_quotient(benchmark):
    def quotient():
        return DAG.mapped(lambda n: n // 10)

    q = benchmark(quotient)
    assert len(q.elements) == 12


# ----------------------------------------------------------------------
# bitset engine vs the retired dict-of-sets engine
# ----------------------------------------------------------------------
def _grid_pairs(n):
    """Edges of an n-by-n grid DAG (right + down): dense closures."""
    pairs = []
    for i in range(n):
        for j in range(n):
            if i + 1 < n:
                pairs.append((f"n{i}_{j}", f"n{i + 1}_{j}"))
            if j + 1 < n:
                pairs.append((f"n{i}_{j}", f"n{i}_{j + 1}"))
    return pairs


GRID_SIZES = (6, 10, 14, 20)


def _best_of(fn, repeats=3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_bench_closure_grid_vs_dict_engine(benchmark, emit):
    dict_engine = pytest.importorskip(
        "tests.core.dict_engine",
        reason="differential shim only importable from the repo root",
    )

    rows = []
    data = []
    for n in GRID_SIZES:
        pairs = _grid_pairs(n)
        bitset = Relation(pairs)
        dicts = dict_engine.DictRelation(pairs)
        bitset_seconds, bitset_closed = _best_of(bitset.transitive_closure)
        dict_seconds, dict_closed = _best_of(dicts.transitive_closure)
        assert list(bitset_closed.pairs()) == list(dict_closed.pairs())
        ratio = dict_seconds / max(bitset_seconds, 1e-9)
        rows.append((n, n * n, len(bitset_closed), bitset_seconds, dict_seconds, ratio))
        data.append(
            {
                "grid": n,
                "nodes": n * n,
                "closed_pairs": len(bitset_closed),
                "bitset_seconds": bitset_seconds,
                "dict_seconds": dict_seconds,
                "ratio": ratio,
            }
        )

    # The rewrite's reason to exist: on the largest (densest-closure)
    # grid the packed-bitset engine must beat the dict engine by >=10x.
    # Measured headroom is far larger, so the bound survives noisy CI.
    assert rows[-1][-1] >= 10.0, f"only {rows[-1][-1]:.1f}x on {GRID_SIZES[-1]}x{GRID_SIZES[-1]}"

    largest = Relation(_grid_pairs(GRID_SIZES[-1]))
    closed = benchmark(largest.transitive_closure)
    assert closed.is_transitive()

    table = format_table(
        ["grid", "nodes", "closed pairs", "bitset ms", "dict ms", "ratio"],
        [
            [
                f"{n}x{n}",
                nodes,
                closed_pairs,
                f"{bs * 1000:.2f}",
                f"{ds * 1000:.2f}",
                f"{ratio:.1f}x",
            ]
            for n, nodes, closed_pairs, bs, ds, ratio in rows
        ],
    )
    emit(
        "MICRO_RELATIONS",
        "\n".join(
            [
                banner("micro: closure, bitset engine vs dict engine"),
                table,
                "",
                "packed bitset rows close dense grids via word-parallel "
                "row unions; the dict-of-sets engine pays per-pair set "
                "operations for the same result.",
            ]
        ),
        data={"closure_grid": data},
    )
