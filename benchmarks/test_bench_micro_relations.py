"""Micro-benchmarks for the relation engine.

Everything the checker does reduces to operations on
:class:`repro.core.orders.Relation` — transitive closure, cycle
detection, quotienting, topological sorting.  These micro-benchmarks
track their costs on representative graph shapes so a regression in the
engine is visible independently of the end-to-end numbers in P2.
"""

import random

import pytest

from repro.core.orders import Relation


def _random_dag(nodes: int, edges: int, seed: int = 0) -> Relation:
    rng = random.Random(seed)
    relation = Relation(elements=range(nodes))
    added = 0
    while added < edges:
        a, b = rng.randrange(nodes), rng.randrange(nodes)
        if a < b:
            relation.add(a, b)
            added += 1
    return relation


DAG = _random_dag(120, 400)
CHAIN = Relation([(i, i + 1) for i in range(200)])
CYCLIC = _random_dag(120, 400)
CYCLIC.add(119, 0)


def test_bench_transitive_closure(benchmark):
    closed = benchmark(DAG.transitive_closure)
    assert closed.is_transitive()


def test_bench_chain_closure(benchmark):
    closed = benchmark(CHAIN.transitive_closure)
    assert (0, 200) in closed


def test_bench_cycle_detection_acyclic(benchmark):
    assert benchmark(DAG.find_cycle) is None


def test_bench_cycle_detection_cyclic(benchmark):
    cycle = benchmark(CYCLIC.find_cycle)
    assert cycle is not None


def test_bench_topological_sort(benchmark):
    order = benchmark(DAG.topological_sort)
    assert len(order) == 120


def test_bench_quotient(benchmark):
    def quotient():
        return DAG.mapped(lambda n: n // 10)

    q = benchmark(quotient)
    assert len(q.elements) == 12
