"""T1 — Theorem 1: Comp-C ⇔ a level-N front exists.

Constructive validation on randomized ensembles over every
configuration class: for each accepted execution the serial front is
built by topological sorting (the proof's construction) and Def.-19
containment is verified; for each rejected execution the witness cycle
is re-validated edge by edge against the model.  Both directions must
hold on 100% of instances.  The benchmark times one full ensemble pass.
"""

from repro.analysis.tables import banner, format_table
from repro.analysis.theorems import theorem1_experiment


def run():
    return theorem1_experiment(trials=36, seed=100)


def test_bench_t1_theorem1(benchmark, emit):
    rows = benchmark.pedantic(run, rounds=2, iterations=1)

    # --- assertions: both directions, every instance --------------------
    for row in rows:
        assert row.trials > 0
        assert row.all_valid, (
            f"{row.label}: {row.witnesses_valid}/{row.accepted} witnesses, "
            f"{row.certificates_valid}/{row.trials - row.accepted} certificates"
        )
    # the ensemble must exercise both verdicts somewhere
    assert any(row.accepted > 0 for row in rows)
    assert any(row.accepted < row.trials for row in rows)

    table = format_table(
        [
            "configuration",
            "instances",
            "accepted",
            "serial witnesses valid",
            "rejection certificates valid",
        ],
        [
            [
                row.label,
                row.trials,
                row.accepted,
                f"{row.witnesses_valid}/{row.accepted}",
                f"{row.certificates_valid}/{row.trials - row.accepted}",
            ]
            for row in rows
        ],
    )
    emit(
        "T1",
        banner("T1: Theorem 1 — constructive validation")
        + "\n"
        + table
        + "\npaper claim reproduced: reduction success is equivalent to "
        "containment in a serial front, in both directions, on every "
        "instance.",
    )
