"""ST1 — streaming checker amortized per-event cost vs re-check-from-scratch.

The streaming claim: :class:`~repro.stream.IncrementalChecker` answers
"what is the verdict now?" after *every* event at O(1) amortized cost —
non-commit events are dictionary work, commits pay one delta-closure
reduction — while the naive online baseline must reassemble the
committed prefix and re-run the batch ``reduce_to_roots`` from scratch
to answer the same question.

Both produce the same verdict at the same event.  The benchmark
measures events/sec and verdict latency for the incremental pass, and
the baseline's per-event cost by timing a from-scratch re-check on a
deterministic sample of events (every ``SAMPLE_EVERY``-th event plus
every commit) and extrapolating over the events it would have to
answer for — re-checking at literally every event would make the
benchmark minutes long without changing the comparison.  The hard
assertion: at depth >= 3 the incremental pass beats the extrapolated
baseline outright.
"""

import time

from repro.analysis.tables import banner, format_table
from repro.core.reduction import reduce_to_roots
from repro.io.eventlog import events_from_recorded, interleave_by_commit
from repro.io.text_format import dumps
from repro.stream import IncrementalChecker, StreamAssembler
from repro.workloads.generator import WorkloadConfig, generate
from repro.workloads.topologies import stack_topology

ROOTS = 10
SEED = 7
SAMPLE_EVERY = 32


def _workload(depth):
    recorded = generate(
        stack_topology(depth),
        WorkloadConfig(seed=SEED, roots=ROOTS, conflict_probability=0.2),
    )
    return recorded, interleave_by_commit(events_from_recorded(recorded))


def _incremental_pass(events):
    """One streamed pass; returns (verdict, seconds)."""
    checker = IncrementalChecker()
    start = time.perf_counter()
    verdict = checker.ingest_all(events)
    return verdict, time.perf_counter() - start


def _baseline_pass(events):
    """The naive online checker, sampled.

    Returns ``(rejected_at, extrapolated_seconds, samples)``: the
    1-based event index where a from-scratch re-check first rejects,
    and the estimated cost of re-checking after every event it answers
    for (events before the first commit are free — there is nothing to
    check; after the first rejection the verdict is final by
    monotonicity, so even the naive checker stops re-checking).
    """
    assembler = StreamAssembler()
    rejected_at = None
    first_commit_at = None
    costs = []
    answered = 0
    for n, event in enumerate(events, start=1):
        delta = assembler.apply(event)
        if rejected_at is not None:
            continue
        if first_commit_at is None and delta is None:
            continue
        answered += 1
        if delta is None and n % SAMPLE_EVERY != 0:
            continue
        start = time.perf_counter()
        recorded = assembler.build()
        assert recorded is not None
        failure = reduce_to_roots(recorded.system).failure
        costs.append(time.perf_counter() - start)
        if delta is not None:
            if first_commit_at is None:
                first_commit_at = n
            if failure is not None:
                rejected_at = n
    extrapolated = sum(costs) / len(costs) * answered
    return rejected_at, extrapolated, len(costs)


def _assembly_pass(events, incremental):
    """Assembly cost alone, isolated from the reduction: time every
    per-commit (re)build of the committed system, incremental
    (persistent builder, O(activated declarations)) or full (replay
    every staged declaration, O(total)).  Returns
    ``(seconds, commits, final_recorded)``."""
    assembler = StreamAssembler()
    total = 0.0
    commits = 0
    final = None
    for event in events:
        if assembler.apply(event) is None:
            continue
        commits += 1
        start = time.perf_counter()
        final = (
            assembler.build_incremental()
            if incremental
            else assembler.build()
        )
        total += time.perf_counter() - start
    return total, commits, final


def test_bench_st1_streaming(benchmark, emit):
    depths = (2, 3, 4)
    loads = {depth: _workload(depth) for depth in depths}

    benchmark.pedantic(
        lambda: _incremental_pass(loads[3][1]), rounds=3, iterations=1
    )

    rows = []
    assembly_rows = []
    data = {
        "roots": ROOTS,
        "seed": SEED,
        "sample_every": SAMPLE_EVERY,
        "depths": {},
        "assembly": {},
    }
    for depth in depths:
        recorded, events = loads[depth]
        inc_runs = [_incremental_pass(events) for _ in range(3)]
        verdict = inc_runs[0][0]
        inc_s = min(s for _, s in inc_runs)
        # one baseline pass: the extrapolation already averages over
        # many per-event samples, and a second pass would double the
        # slowest part of the benchmark for no extra signal
        base_rejected_at, base_s, samples = _baseline_pass(events)

        # the online passes agree with the batch verdict...
        batch = reduce_to_roots(recorded.system)
        assert verdict.rejected == (batch.failure is not None)
        assert (base_rejected_at is not None) == verdict.rejected
        # ...and flip at the same event
        if verdict.rejected:
            assert base_rejected_at == verdict.rejected_at_event

        speedup = base_s / inc_s
        if depth >= 3:
            # the amortization claim the ISSUE pins: maintained state
            # beats per-event from-scratch re-checking
            assert inc_s < base_s, (
                f"depth {depth}: incremental {inc_s:.4f}s not faster "
                f"than from-scratch {base_s:.4f}s"
            )
        rows.append(
            [
                f"stack depth {depth}",
                len(events),
                f"{len(events) / inc_s:.0f}",
                f"{1e6 * inc_s / len(events):.1f}",
                f"{1e6 * base_s / len(events):.1f}",
                f"{speedup:.1f}x",
                verdict.rejected_at_event or "-",
            ]
        )
        data["depths"][str(depth)] = {
            "events": len(events),
            "incremental_s": inc_s,
            "baseline_extrapolated_s": base_s,
            "baseline_samples": samples,
            "events_per_s_incremental": len(events) / inc_s,
            "per_event_us_incremental": 1e6 * inc_s / len(events),
            "per_event_us_baseline": 1e6 * base_s / len(events),
            "speedup": speedup,
            "verdict": verdict.status,
            "rejected_at_event": verdict.rejected_at_event,
        }

        # the assembly series: per-commit system construction alone,
        # persistent builder vs replay-everything
        inc_asm_s, commits, inc_final = min(
            (_assembly_pass(events, incremental=True) for _ in range(3)),
            key=lambda r: r[0],
        )
        full_asm_s, _, full_final = min(
            (_assembly_pass(events, incremental=False) for _ in range(3)),
            key=lambda r: r[0],
        )
        # the two assembly paths produce byte-identical systems
        assert dumps(inc_final) == dumps(full_final)
        asm_speedup = full_asm_s / inc_asm_s
        if depth >= 3:
            assert inc_asm_s < full_asm_s, (
                f"depth {depth}: incremental assembly {inc_asm_s:.4f}s "
                f"not faster than full replay {full_asm_s:.4f}s"
            )
        assembly_rows.append(
            [
                f"stack depth {depth}",
                commits,
                f"{1e3 * inc_asm_s / commits:.2f}",
                f"{1e3 * full_asm_s / commits:.2f}",
                f"{asm_speedup:.1f}x",
            ]
        )
        data["assembly"][str(depth)] = {
            "commits": commits,
            "incremental_s": inc_asm_s,
            "full_replay_s": full_asm_s,
            "speedup": asm_speedup,
        }

    table = format_table(
        [
            "configuration",
            "events",
            "ev/s incremental",
            "us/ev incremental",
            "us/ev from-scratch",
            "speedup",
            "rejected at",
        ],
        rows,
    )
    assembly_table = format_table(
        [
            "configuration",
            "commits",
            "ms/commit incremental",
            "ms/commit full replay",
            "speedup",
        ],
        assembly_rows,
    )
    emit(
        "ST1",
        banner("ST1: streaming checker vs re-check-from-scratch")
        + "\n"
        + table
        + "\nsame verdict at the same event; from-scratch cost extrapolated"
        + f"\nfrom {SAMPLE_EVERY}-event samples; amortized win at depth >= 3."
        + "\n\n"
        + banner("ST1b: per-commit assembly, persistent builder vs replay")
        + "\n"
        + assembly_table
        + "\nbyte-identical assembled systems; builder win at depth >= 3.",
        data=data,
    )
