"""ST1 — streaming checker amortized per-event cost vs re-check-from-scratch.

The streaming claim: :class:`~repro.stream.IncrementalChecker` answers
"what is the verdict now?" after *every* event at O(1) amortized cost —
non-commit events are dictionary work, commits pay one delta-closure
reduction — while the naive online baseline must reassemble the
committed prefix and re-run the batch ``reduce_to_roots`` from scratch
to answer the same question.

Both produce the same verdict at the same event.  The benchmark
measures events/sec and verdict latency for the incremental pass, and
the baseline's per-event cost by timing a from-scratch re-check on a
deterministic sample of events (every ``SAMPLE_EVERY``-th event plus
every commit) and extrapolating over the events it would have to
answer for — re-checking at literally every event would make the
benchmark minutes long without changing the comparison.  The hard
assertion: at depth >= 3 the incremental pass beats the extrapolated
baseline outright.
"""

import time

from repro.analysis.tables import banner, format_table
from repro.core.reduction import reduce_to_roots
from repro.io.eventlog import events_from_recorded
from repro.stream import IncrementalChecker, StreamAssembler
from repro.workloads.generator import WorkloadConfig, generate
from repro.workloads.topologies import stack_topology

ROOTS = 10
SEED = 7
SAMPLE_EVERY = 32


def _interleaved(events):
    """Re-lay the canonical log out as a *live* trace.

    :func:`events_from_recorded` emits the batch-shaped layout — every
    declaration and arrival first, all commits at the tail — which is
    the degenerate case for an online checker (there is nothing to
    answer until the last handful of events).  A watch stream sees
    roots run and commit interleaved; model that as each root's txn
    declarations, begin, arrivals, and commit in turn.  Declared
    orders are unchanged, so the final system and verdict are too.
    """
    header, end = events[0], events[-1]
    txn_decls, arrivals = {}, {}
    other_decls = []
    for e in events:
        if e.kind == "txn":
            txn_decls.setdefault(e.root, []).append(e)
        elif e.kind in ("conflict", "order"):
            other_decls.append(e)
        elif e.kind in ("access", "call"):
            arrivals.setdefault(e.root, []).append(e)
    begins = {e.root: e for e in events if e.kind == "begin"}
    out = [header] + other_decls
    for commit in (e for e in events if e.kind == "commit"):
        out += txn_decls.get(commit.root, [])
        out.append(begins[commit.root])
        out += arrivals.get(commit.root, [])
        out.append(commit)
    out.append(end)
    assert len(out) == len(events)
    return out


def _workload(depth):
    recorded = generate(
        stack_topology(depth),
        WorkloadConfig(seed=SEED, roots=ROOTS, conflict_probability=0.2),
    )
    return recorded, _interleaved(events_from_recorded(recorded))


def _incremental_pass(events):
    """One streamed pass; returns (verdict, seconds)."""
    checker = IncrementalChecker()
    start = time.perf_counter()
    verdict = checker.ingest_all(events)
    return verdict, time.perf_counter() - start


def _baseline_pass(events):
    """The naive online checker, sampled.

    Returns ``(rejected_at, extrapolated_seconds, samples)``: the
    1-based event index where a from-scratch re-check first rejects,
    and the estimated cost of re-checking after every event it answers
    for (events before the first commit are free — there is nothing to
    check; after the first rejection the verdict is final by
    monotonicity, so even the naive checker stops re-checking).
    """
    assembler = StreamAssembler()
    rejected_at = None
    first_commit_at = None
    costs = []
    answered = 0
    for n, event in enumerate(events, start=1):
        delta = assembler.apply(event)
        if rejected_at is not None:
            continue
        if first_commit_at is None and delta is None:
            continue
        answered += 1
        if delta is None and n % SAMPLE_EVERY != 0:
            continue
        start = time.perf_counter()
        recorded = assembler.build()
        assert recorded is not None
        failure = reduce_to_roots(recorded.system).failure
        costs.append(time.perf_counter() - start)
        if delta is not None:
            if first_commit_at is None:
                first_commit_at = n
            if failure is not None:
                rejected_at = n
    extrapolated = sum(costs) / len(costs) * answered
    return rejected_at, extrapolated, len(costs)


def test_bench_st1_streaming(benchmark, emit):
    depths = (2, 3, 4)
    loads = {depth: _workload(depth) for depth in depths}

    benchmark.pedantic(
        lambda: _incremental_pass(loads[3][1]), rounds=3, iterations=1
    )

    rows = []
    data = {
        "roots": ROOTS,
        "seed": SEED,
        "sample_every": SAMPLE_EVERY,
        "depths": {},
    }
    for depth in depths:
        recorded, events = loads[depth]
        inc_runs = [_incremental_pass(events) for _ in range(3)]
        verdict = inc_runs[0][0]
        inc_s = min(s for _, s in inc_runs)
        # one baseline pass: the extrapolation already averages over
        # many per-event samples, and a second pass would double the
        # slowest part of the benchmark for no extra signal
        base_rejected_at, base_s, samples = _baseline_pass(events)

        # the online passes agree with the batch verdict...
        batch = reduce_to_roots(recorded.system)
        assert verdict.rejected == (batch.failure is not None)
        assert (base_rejected_at is not None) == verdict.rejected
        # ...and flip at the same event
        if verdict.rejected:
            assert base_rejected_at == verdict.rejected_at_event

        speedup = base_s / inc_s
        if depth >= 3:
            # the amortization claim the ISSUE pins: maintained state
            # beats per-event from-scratch re-checking
            assert inc_s < base_s, (
                f"depth {depth}: incremental {inc_s:.4f}s not faster "
                f"than from-scratch {base_s:.4f}s"
            )
        rows.append(
            [
                f"stack depth {depth}",
                len(events),
                f"{len(events) / inc_s:.0f}",
                f"{1e6 * inc_s / len(events):.1f}",
                f"{1e6 * base_s / len(events):.1f}",
                f"{speedup:.1f}x",
                verdict.rejected_at_event or "-",
            ]
        )
        data["depths"][str(depth)] = {
            "events": len(events),
            "incremental_s": inc_s,
            "baseline_extrapolated_s": base_s,
            "baseline_samples": samples,
            "events_per_s_incremental": len(events) / inc_s,
            "per_event_us_incremental": 1e6 * inc_s / len(events),
            "per_event_us_baseline": 1e6 * base_s / len(events),
            "speedup": speedup,
            "verdict": verdict.status,
            "rejected_at_event": verdict.rejected_at_event,
        }

    table = format_table(
        [
            "configuration",
            "events",
            "ev/s incremental",
            "us/ev incremental",
            "us/ev from-scratch",
            "speedup",
            "rejected at",
        ],
        rows,
    )
    emit(
        "ST1",
        banner("ST1: streaming checker vs re-check-from-scratch")
        + "\n"
        + table
        + "\nsame verdict at the same event; from-scratch cost extrapolated"
        + f"\nfrom {SAMPLE_EVERY}-event samples; amortized win at depth >= 3.",
        data=data,
    )
