"""Kernel guard: the incremental closure path must never lose.

The bitset rewrite exists because the old engine's incremental closure
was a no-win: ``add_closed`` cost as much as re-closing from scratch,
so streaming checking stayed blocked.  This guard is the tripwire — a
fast CI smoke that fails the build the moment the incremental path's
wall-clock speedup over from-scratch re-closing drops below 1.0 at any
measured depth.  The measured headroom is ~5x (see BENCH_P2.json,
"closure_path"), so a trip means a real kernel regression, not noise.

Runs without the pytest-benchmark fixture so ``--benchmark-disable``
smoke jobs execute it at full strength.
"""

from repro.analysis.scaling import closure_path_speedup


def test_kernel_guard_incremental_closure_wins():
    points = closure_path_speedup(depths=(3, 5), repeats=3)
    assert points, "no closure-path measurements"
    for point in points:
        assert point.speedup >= 1.0, (
            f"incremental closure path lost at depth {point.depth}: "
            f"{point.speedup:.2f}x (incremental "
            f"{point.incremental_seconds * 1000:.1f}ms vs scratch "
            f"{point.scratch_seconds * 1000:.1f}ms over "
            f"{point.batches} batches / {point.pairs} pairs)"
        )
