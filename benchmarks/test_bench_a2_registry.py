"""A2 — protocol ablation: the divergence-point order registry.

DESIGN.md §2.3 calls out one protocol design choice: CC scheduling adds
a shared registry that orders composite work at the point where two
execution subtrees diverge, generalizing the ticket method.  This
ablation removes exactly that piece (leaving order-preserving SGT per
component, Def.-4.7 plumbing intact) and measures the consequence on
the join — the configuration whose anomalies are invisible locally:

* with the registry: every committed run is Comp-C, at some abort cost;
* without it: abort rates drop, and ghost cycles slip through.
"""

from repro.analysis.tables import banner, format_table
from repro.core.correctness import is_composite_correct
from repro.simulator import ProgramConfig, SimulationConfig, simulate
from repro.workloads.topologies import join_topology

PROGRAM = ProgramConfig(items_per_component=4, item_skew=0.8)
SEEDS = range(6)


def measure(with_registry: bool):
    comp_c = runs = 0
    aborts = 0.0
    throughput = 0.0
    for seed in SEEDS:
        result = simulate(
            SimulationConfig(
                topology=join_topology(3),
                protocol="cc",
                clients=4,
                transactions_per_client=8,
                seed=seed,
                program=PROGRAM,
                cc_registry=with_registry,
            )
        )
        if result.assembled is None:
            continue
        runs += 1
        aborts += result.metrics.abort_rate
        throughput += result.metrics.throughput
        if is_composite_correct(result.assembled.recorded.system):
            comp_c += 1
    return comp_c, runs, aborts / runs, throughput / runs


def test_bench_a2_registry(benchmark, emit):
    with_reg = benchmark.pedantic(
        lambda: measure(True), rounds=2, iterations=1
    )
    without_reg = measure(False)

    comp_with, runs_with, aborts_with, thr_with = with_reg
    comp_without, runs_without, aborts_without, thr_without = without_reg

    # --- assertions -----------------------------------------------------
    assert comp_with == runs_with, "registry runs must all be Comp-C"
    assert comp_without < runs_without, (
        "removing the registry should let ghost cycles through"
    )
    assert aborts_without <= aborts_with, (
        "the registry's correctness is paid for in aborts"
    )

    emit(
        "A2",
        banner("A2: CC scheduling without the order registry")
        + "\n"
        + format_table(
            ["variant", "Comp-C runs", "abort rate", "throughput"],
            [
                [
                    "cc (registry on)",
                    f"{comp_with}/{runs_with}",
                    f"{aborts_with:.3f}",
                    f"{thr_with:.3f}",
                ],
                [
                    "cc (registry off)",
                    f"{comp_without}/{runs_without}",
                    f"{aborts_without:.3f}",
                    f"{thr_without:.3f}",
                ],
            ],
        )
        + "\nthe registry is exactly what turns per-component conflict "
        "consistency into composite correctness on joins.",
    )
