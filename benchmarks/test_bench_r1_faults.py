"""R1 — robustness: Comp-C safety under injected faults.

The paper decides correctness from what each component *actually
committed* (Def. 10-16, Thm. 1) — which makes Comp-C exactly the
invariant that should survive component failures.  R1 makes that
measurable: every protocol runs under seeded fault plans (component
crash/restart windows, message drops, service degradation, transient
access failures) of increasing intensity, and every committed
execution is re-checked with the reduction.

The headline: faults degrade *liveness* — availability drops, abort
rates climb, work is wasted on discarded attempts — but never
*safety*: the recorder still assembles the committed execution under
every fault plan, and the composite-aware protocols (CC scheduling,
strict 2PL) stay Comp-C at every intensity.  The uncoordinated
protocols lose correctness for their usual reasons (ghost cycles on
joins), not because of faults.

The benchmark times one faulty CC cell; the sweep below is the
artifact table.  The grid runs through :func:`chaos_grid`, so setting
``REPRO_BENCH_WORKERS`` shards the (protocol x seed) cells across
processes — with output identical to the serial run by the batch
runner's determinism contract.
"""

import os

from repro.analysis.batch import chaos_grid
from repro.analysis.protocols import evaluate_protocol_under_faults
from repro.analysis.tables import format_table
from repro.simulator.programs import ProgramConfig
from repro.workloads.topologies import join_topology, stack_topology

PROGRAM = ProgramConfig(items_per_component=4, item_skew=0.8)
SEEDS = (0, 1)
INTENSITIES = (0.0, 0.5, 1.0)
PROTOCOLS = ("cc", "s2pl", "sgt", "to")
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))


def one_cell():
    return evaluate_protocol_under_faults(
        join_topology(3),
        "cc",
        intensity=1.0,
        seeds=SEEDS,
        clients=3,
        transactions_per_client=5,
        program=PROGRAM,
    )


def test_r1_smoke():
    """Fast CI gate: a faulty CC run is deterministic and stays Comp-C."""
    a = one_cell()
    b = one_cell()
    assert (a.commits, a.gave_up, a.availability, a.aborts_by_reason) == (
        b.commits,
        b.gave_up,
        b.availability,
        b.aborts_by_reason,
    )
    assert a.comp_c_rate == 1.0
    assert sum(a.faults_injected.values()) > 0


def test_bench_r1_faults(benchmark, emit):
    benchmark.pedantic(one_cell, rounds=2, iterations=1)

    topologies = [stack_topology(2), join_topology(3)]
    points = []
    for topology in topologies:
        for intensity in INTENSITIES:
            points.extend(
                chaos_grid(
                    topology,
                    PROTOCOLS,
                    SEEDS,
                    workers=WORKERS,
                    intensity=intensity,
                    clients=3,
                    transactions_per_client=5,
                    program=PROGRAM,
                )
            )

    # --- assertions: faults attack liveness, never safety --------------
    by_key = {(p.topology, p.protocol, p.intensity): p for p in points}
    for topology in topologies:
        for intensity in INTENSITIES:
            # the composite-aware protocols commit only Comp-C
            # executions, no matter what fails underneath them:
            assert by_key[(topology.name, "cc", intensity)].comp_c_rate == 1.0
            assert (
                by_key[(topology.name, "s2pl", intensity)].comp_c_rate == 1.0
            )
    for point in points:
        if point.intensity == 0.0:
            # intensity 0 is the fault-free baseline
            assert point.availability == 1.0
            assert not point.faults_injected
        else:
            assert sum(point.faults_injected.values()) > 0
    # crashes cost uptime somewhere in the faulty grid:
    faulty = [p for p in points if p.intensity > 0]
    assert any(p.availability < 1.0 for p in faulty)
    # and wasted work grows with intensity for the pessimistic protocol
    # (aborted attempts leave operations behind):
    assert any(p.discarded_operations > 0 for p in faulty)

    emit(
        "r1_faults",
        format_table(
            [
                "topology",
                "protocol",
                "intensity",
                "commits",
                "gave up",
                "avail.",
                "abort rate",
                "aborts by reason",
                "Comp-C",
            ],
            [
                [
                    p.topology,
                    p.protocol,
                    f"{p.intensity:.2f}",
                    p.commits,
                    p.gave_up,
                    f"{p.availability:.3f}",
                    f"{p.abort_rate:.3f}",
                    p.abort_breakdown(),
                    f"{p.comp_c_runs}/{p.assembled_runs}",
                ]
                for p in points
            ],
        ),
        data={
            "workers": WORKERS,
            "points": [
                {
                    "topology": p.topology,
                    "protocol": p.protocol,
                    "intensity": p.intensity,
                    "commits": p.commits,
                    "gave_up": p.gave_up,
                    "availability": p.availability,
                    "abort_rate": p.abort_rate,
                    "aborts_by_reason": p.aborts_by_reason,
                    "faults_injected": p.faults_injected,
                    "comp_c_runs": p.comp_c_runs,
                    "assembled_runs": p.assembled_runs,
                }
                for p in points
            ],
        },
    )
