"""H1 — the §4 hierarchy: LLSR, OPSR ⊊ SCC = Comp-C.

The paper claims level-by-level serializability and order-preserving
serializability are *proper* subsets of SCC (and hence of Comp-C).  The
measurable shape: per-criterion acceptance rates on random stack
ensembles must satisfy the containments with zero violations, and the
gaps must be non-empty — LLSR rejects executions that exploit semantic
commutativity, OPSR rejects executions whose temporal layout reorders
commuting transactions.  Random layouts expose the LLSR gap; perturbed
serial layouts (commuting swaps only, always correct) expose the
layout-sensitivity of OPSR/seriality.  The benchmark times one grid.
"""

from repro.analysis.agreement import agreement_matrix, format_agreement
from repro.analysis.hierarchy import (
    HIERARCHY,
    run_hierarchy_experiment,
    total_violations,
)
from repro.analysis.tables import banner, format_table


def run_random():
    return run_hierarchy_experiment(
        depth=2,
        trials=40,
        conflict_rates=(0.05, 0.15, 0.3, 0.5),
        seed=0,
        layout="random",
    )


def test_bench_h1_hierarchy(benchmark, emit):
    random_rows = benchmark.pedantic(run_random, rounds=2, iterations=1)
    perturbed_rows = run_hierarchy_experiment(
        depth=2,
        roots=4,
        trials=40,
        conflict_rates=(0.2, 0.5),
        seed=0,
        layout="perturbed",
        perturbation_swaps=30,
        ops_per_transaction=(1, 2),
    )

    # --- assertions ------------------------------------------------------
    assert total_violations(random_rows) == 0
    assert total_violations(perturbed_rows) == 0
    # SCC == Comp-C cell by cell (Theorem 2):
    for row in random_rows + perturbed_rows:
        assert row.accepted["scc"] == row.accepted["comp_c"]
    # strict gaps somewhere on the grid:
    assert any(
        row.accepted["llsr"] < row.accepted["comp_c"] for row in random_rows
    ), "LLSR should be a proper subset on random layouts"
    assert any(
        row.accepted["opsr"] < row.accepted["comp_c"]
        for row in perturbed_rows
    ), "OPSR should be a proper subset on perturbed layouts"
    # perturbed serial executions are always Comp-C:
    for row in perturbed_rows:
        assert row.accepted["comp_c"] == row.trials

    def table(rows):
        return format_table(
            ["conflict rate"] + [c.upper() for c in HIERARCHY],
            [
                [f"{row.conflict_probability:.2f}"]
                + [
                    f"{row.accepted[c]}/{row.trials}"
                    for c in HIERARCHY
                ]
                for row in rows
            ],
        )

    matrix = agreement_matrix(trials=90, seed=0)
    # LLSR and OPSR must be incomparable (the paper orders both below
    # SCC but not against each other):
    assert matrix.incomparable("llsr", "opsr")
    assert matrix.agreement_rate("scc", "comp_c") == 1.0

    emit(
        "H1",
        "\n".join(
            [
                banner("H1: criteria hierarchy on stacks"),
                "random layouts (acceptance counts):",
                table(random_rows),
                "",
                "perturbed serial layouts (all Comp-C by construction):",
                table(perturbed_rows),
                "",
                "pairwise disagreement matrix:",
                format_agreement(matrix),
                "",
                "containment violations across the whole grid: "
                f"{total_violations(random_rows) + total_violations(perturbed_rows)}",
                "paper claim reproduced: LLSR and OPSR accept strictly "
                "less than SCC; SCC tracks Comp-C exactly (Thm. 2).",
            ]
        ),
    )
