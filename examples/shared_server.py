#!/usr/bin/env python3
"""Two independent applications over one server: a *join* (Def. 25).

This is the configuration where classical per-component reasoning fails
hardest: the two client applications share no schedule, so nothing at
their level can see how their work interleaves at the server.  The
paper's ghost graph (Def. 26) materializes exactly those hidden
dependencies, and Theorem 4 says JCC — server conflict consistency plus
acyclicity of the ghost graph joined with the clients' own orders —
characterizes Comp-C.

The example then drives the discrete-event simulator over the same
shape with two protocols and shows the practical consequence: a plain
optimistic scheduler at the server happily commits ghost cycles, while
CC scheduling (with its root-order registry, the ticket-method idea the
paper's §4 cites) never does.

Run:  python examples/shared_server.py
"""

from repro import SystemBuilder, check_composite_correctness
from repro.criteria import ghost_graph, is_jcc, is_join
from repro.simulator import ProgramConfig, SimulationConfig, simulate
from repro.workloads.topologies import join_topology


def build(server_order):
    """Roots T1 (app C1) and T2 (app C2), two server calls each."""
    b = SystemBuilder()
    b.transaction("T1", "C1", ["u1", "u2"])
    b.transaction("T2", "C2", ["v1", "v2"])
    b.executed("C1", ["u1", "u2"])
    b.executed("C2", ["v1", "v2"])
    b.transaction("u1", "Server", ["x_w1"])
    b.transaction("u2", "Server", ["y_w1"])
    b.transaction("v1", "Server", ["x_w2"])
    b.transaction("v2", "Server", ["y_w2"])
    b.conflict("Server", "x_w1", "x_w2")
    b.conflict("Server", "y_w1", "y_w2")
    b.executed("Server", list(server_order))
    return b.build()


def analyse(title, system):
    print("=" * 72)
    print(title)
    print("=" * 72)
    assert is_join(system)
    ghost = ghost_graph(system, "Server")
    print("  ghost graph (Def. 26):")
    for a, b in ghost.pairs():
        print(f"    {a} ~> {b}")
    jcc = is_jcc(system)
    comp = check_composite_correctness(system)
    print(f"  JCC (Def. 27):   {'yes' if jcc else 'NO'}")
    print(f"  Comp-C (Thm. 1): {'yes' if comp.correct else 'NO'}")
    assert jcc == comp.correct, "Theorem 4 must hold"
    print()


def simulate_protocols():
    print("=" * 72)
    print("simulation: 3 apps x shared server, 4 concurrent clients")
    print("=" * 72)
    header = f"  {'protocol':8s} {'commits':>8s} {'abort rate':>11s} {'Comp-C runs':>12s}"
    print(header)
    for protocol in ("sgt", "cc"):
        comp_c = runs = 0
        commits = 0
        abort_rate = 0.0
        for seed in range(6):
            result = simulate(
                SimulationConfig(
                    topology=join_topology(3),
                    protocol=protocol,
                    clients=4,
                    transactions_per_client=6,
                    seed=seed,
                    program=ProgramConfig(
                        items_per_component=4, item_skew=0.8
                    ),
                )
            )
            if result.assembled is None:
                continue
            runs += 1
            commits += result.metrics.commits
            abort_rate += result.metrics.abort_rate
            if check_composite_correctness(
                result.assembled.recorded.system
            ).correct:
                comp_c += 1
        print(
            f"  {protocol:8s} {commits:>8d} {abort_rate / runs:>11.3f}"
            f" {comp_c:>7d}/{runs}"
        )
    print()
    print(
        "  sgt: every committed run is locally serializable at every\n"
        "  component, yet most runs hide a ghost cycle -> NOT Comp-C.\n"
        "  cc:  the shared root-order registry (ticket method) keeps the\n"
        "  cross-application serialization consistent -> always Comp-C."
    )


def main() -> None:
    analyse(
        "consistent server serialization (T1's calls before T2's)",
        build(["x_w1", "y_w1", "x_w2", "y_w2"]),
    )
    analyse(
        "ghost cycle: x serialized T1->T2 but y serialized T2->T1",
        build(["x_w1", "y_w2", "x_w2", "y_w1"]),
    )
    simulate_protocols()


if __name__ == "__main__":
    main()
