#!/usr/bin/env python3
"""TP monitor scenario: the paper's motivating application, end to end.

A TP monitor coordinates payments, orders and audits over three resource
managers (accounts, stock, an append-style log) — the archetypal
composite system the introduction describes.  The example runs the
TPC-flavoured transaction mix under every protocol, checks each
committed execution with the reduction, and prints the trade-off table
plus one execution-lane view so the interleaving is visible.

Run:  python examples/tp_monitor.py
"""

from repro import check_composite_correctness
from repro.analysis import format_table
from repro.simulator import SimulationConfig, simulate
from repro.simulator.scenarios import tp_monitor_mix, tp_monitor_topology
from repro.viz import render_lanes


def main() -> None:
    rows = []
    sample = None
    for protocol in ("cc", "s2pl", "sgt", "to"):
        commits = 0
        abort_rate = throughput = 0.0
        comp_c = runs = 0
        for seed in range(4):
            result = simulate(
                SimulationConfig(
                    topology=tp_monitor_topology(),
                    protocol=protocol,
                    clients=5,
                    transactions_per_client=8,
                    seed=seed,
                    program_factory=tp_monitor_mix(
                        payment=0.5, order=0.35, audit=0.15
                    ),
                )
            )
            runs += 1
            commits += result.metrics.commits
            abort_rate += result.metrics.abort_rate
            throughput += result.metrics.throughput
            recorded = result.assembled.recorded
            if check_composite_correctness(recorded.system).correct:
                comp_c += 1
            if protocol == "sgt" and sample is None:
                sample = recorded
        rows.append(
            [
                protocol,
                commits,
                f"{throughput / runs:.3f}",
                f"{abort_rate / runs:.3f}",
                f"{comp_c}/{runs}",
            ]
        )
    print("TP monitor, payment/order/audit mix, 5 concurrent clients:\n")
    print(
        format_table(
            ["protocol", "commits", "throughput", "abort rate", "Comp-C runs"],
            rows,
        )
    )
    print()
    if sample is not None:
        print("one committed execution under sgt (lanes per component):")
        print(render_lanes(sample))
    print()
    print(
        "the monitor itself is a pure coordinator, so this shape is a\n"
        "fork — Theorem 3 territory — and even the uncoordinated\n"
        "protocols usually stay composite-correct; wire a second monitor\n"
        "to the same managers (a join) and that stops being true, as\n"
        "examples/shared_server.py shows."
    )


if __name__ == "__main__":
    main()
