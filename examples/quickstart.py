#!/usr/bin/env python3
"""Quickstart: model a two-level composite execution and check Comp-C.

Scenario: an order-processing service (``App``) runs on top of a shared
database component (``DB``).  Two business transactions execute
concurrently:

* ``PlaceOrder`` reads the stock level and later writes the order row;
* ``Restock``    updates the stock level.

The database interleaves ``Restock``'s write *between* the two steps of
``PlaceOrder``.  Whether that is correct depends entirely on what the
application layer knows: if the app declares the subtransactions
conflicting (they touch the same logical stock), the execution is not
composite-correct; if it declares them commutative (e.g. the order only
*decrements* and the restock only *increments* a counter), the very same
database behaviour is fine — the multilevel-commutativity forgiveness at
the heart of the paper.

Run:  python examples/quickstart.py
"""

from repro import SystemBuilder, check_composite_correctness


def build(app_knows_conflict: bool):
    b = SystemBuilder()

    # ----- application layer: two root transactions -------------------
    b.transaction("PlaceOrder", "App", ["read_stock", "write_order"])
    b.transaction("Restock", "App", ["bump_stock"])
    if app_knows_conflict:
        b.conflict("App", "read_stock", "bump_stock")
        b.conflict("App", "bump_stock", "write_order")
    b.executed("App", ["read_stock", "bump_stock", "write_order"])

    # ----- database layer: each app step is a DB transaction ----------
    b.transaction("read_stock", "DB", ["r_stock"])
    b.transaction("write_order", "DB", ["w_order", "w_stock2"])
    b.transaction("bump_stock", "DB", ["w_stock"])
    b.conflict("DB", "r_stock", "w_stock")
    b.conflict("DB", "w_stock", "w_stock2")
    b.executed("DB", ["r_stock", "w_stock", "w_order", "w_stock2"])

    return b.build()


def main() -> None:
    for app_knows_conflict in (True, False):
        label = (
            "app declares the subtransactions CONFLICTING"
            if app_knows_conflict
            else "app declares the subtransactions COMMUTATIVE"
        )
        print("=" * 72)
        print(label)
        print("=" * 72)
        report = check_composite_correctness(build(app_knows_conflict))
        print(report.narrative())
        print()
        if report.correct:
            print(
                "verdict: Comp-C — equivalent to the serial order "
                + " << ".join(report.serial_witness)
            )
        else:
            print(f"verdict: NOT Comp-C — {report.failure.describe()}")
        print()


if __name__ == "__main__":
    main()
