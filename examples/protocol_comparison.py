#!/usr/bin/env python3
"""Protocol comparison across configurations (a compact P1 run).

Sweeps the four per-component protocols over the paper's configuration
taxonomy (stack / fork / join / general DAG) at one multiprogramming
level and prints the performance-vs-correctness trade-off:

* ``cc``   — composite CC scheduling: always Comp-C, moderate aborts;
* ``s2pl`` — strict 2PL held to root commit: always Comp-C, heavy
  blocking/timeouts under contention;
* ``sgt``/``to`` — classical uncoordinated protocols: best raw numbers,
  but they commit non-Comp-C executions wherever composite transactions
  interfere through shared components (joins, DAGs).

The full parameter sweep lives in ``benchmarks/test_bench_p1_protocols``.

Run:  python examples/protocol_comparison.py
"""

from repro.analysis import evaluate_protocol, format_table
from repro.simulator import ProgramConfig
from repro.workloads.topologies import (
    fork_topology,
    join_topology,
    random_dag_topology,
    stack_topology,
)


def main() -> None:
    topologies = [
        stack_topology(3),
        fork_topology(3),
        join_topology(3),
        random_dag_topology(3, 2, seed=5),
    ]
    program = ProgramConfig(
        items_per_component=4,
        item_skew=0.8,
        local_access_probability=0.15,
    )
    rows = []
    for topology in topologies:
        for protocol in ("cc", "s2pl", "sgt", "to"):
            point = evaluate_protocol(
                topology,
                protocol,
                clients=4,
                transactions_per_client=8,
                seeds=(0, 1, 2, 3),
                program=program,
            )
            rows.append(
                [
                    point.topology,
                    point.protocol,
                    f"{point.throughput:.3f}",
                    f"{point.abort_rate:.3f}",
                    f"{point.mean_response_time:.2f}",
                    f"{point.comp_c_runs}/{point.runs}",
                ]
            )
    print(
        format_table(
            [
                "topology",
                "protocol",
                "throughput",
                "abort rate",
                "mean resp.",
                "Comp-C runs",
            ],
            rows,
        )
    )
    print()
    print(
        "reading guide: the classical protocols win on raw numbers but\n"
        "lose correctness outside stacks/forks; the composite protocols\n"
        "pay for correctness with aborts (cc) or blocking (s2pl)."
    )


if __name__ == "__main__":
    main()
