#!/usr/bin/env python3
"""Classical transaction models, judged by one criterion (§4).

The paper's closing claim: sagas, distributed transactions, federated
transactions and the ticket method "can be understood and compared"
inside the composite framework.  This example expresses each as a
composite system (via :mod:`repro.models`) and lets the one checker
judge them all:

1. interleaved sagas — accepted by Comp-C (the saga layer vouches step
   commutativity) although flat serializability rejects the history;
2. a distributed transfer pair whose resource managers disagree —
   forgiven when the coordinator knows the transfers commute;
3. a federation whose sites hide a global serialization disagreement —
   rejected; adding tickets turns the disagreement into explicit local
   conflicts, demonstrating why the ticket method works.

Run:  python examples/transaction_models.py
"""

from repro import check_composite_correctness
from repro.models import (
    GlobalTransaction,
    GlobalWork,
    Saga,
    build_distributed_system,
    build_federated_system,
    build_saga_system,
    flat_equivalent_is_serializable,
    with_tickets,
)


def sagas_demo() -> None:
    print("=" * 72)
    print("1. sagas: step interleaving that flat serializability rejects")
    print("=" * 72)
    s1 = (
        Saga("Trip1")
        .step("flight", ("seats", "r"), ("seats", "w"))
        .step("hotel", ("rooms", "r"), ("rooms", "w"))
    )
    s2 = (
        Saga("Trip2")
        .step("flight", ("seats", "r"), ("seats", "w"))
        .step("hotel", ("rooms", "r"), ("rooms", "w"))
    )
    interleaving = ["Trip1.flight", "Trip2.flight", "Trip2.hotel", "Trip1.hotel"]
    system = build_saga_system([s1, s2], interleaving)
    comp = check_composite_correctness(system)
    flat = flat_equivalent_is_serializable([s1, s2], interleaving)
    print(f"  step order: {' -> '.join(interleaving)}")
    print(f"  flat serializability (sagas as monoliths): {'yes' if flat else 'NO'}")
    print(f"  Comp-C (saga layer vouches commutativity): "
          f"{'yes' if comp.correct else 'NO'}")
    print()


def distributed_demo() -> None:
    print("=" * 72)
    print("2. distributed transactions: managers disagree, coordinator vouches")
    print("=" * 72)
    t1 = GlobalTransaction("Xfer1").work("RM1", ("acct", "w")).work(
        "RM2", ("log", "w")
    )
    t2 = GlobalTransaction("Xfer2").work("RM1", ("acct", "w")).work(
        "RM2", ("log", "w")
    )
    system = build_distributed_system(
        [t1, t2], {"RM1": ["Xfer1", "Xfer2"], "RM2": ["Xfer2", "Xfer1"]}
    )
    comp = check_composite_correctness(system)
    print("  RM1 serialized Xfer1 < Xfer2; RM2 serialized Xfer2 < Xfer1")
    print(f"  Comp-C: {'yes' if comp.correct else 'NO'} "
          "(the coordinator declared the transfers commutative)")
    print()


def federation_demo() -> None:
    print("=" * 72)
    print("3. federated transactions and the ticket method")
    print("=" * 72)
    g1 = GlobalWork("G1", "ClientA").at("Site1", ("a", "w")).at(
        "Site2", ("c", "w")
    )
    g2 = GlobalWork("G2", "ClientB").at("Site1", ("b", "w")).at(
        "Site2", ("c", "w")
    )
    orders = {"Site1": ["G1", "G2"], "Site2": ["G2", "G1"]}
    plain = build_federated_system([g1, g2], [], orders)
    print("  disjoint items at Site1, shared item at Site2, opposite orders:")
    print(
        "  without tickets: "
        f"{'Comp-C' if check_composite_correctness(plain).correct else 'NOT Comp-C'}"
        "  (only Site2 orders them -> consistent)"
    )
    ticketed = build_federated_system(with_tickets([g1, g2]), [], orders)
    print(
        "  with tickets:    "
        f"{'Comp-C' if check_composite_correctness(ticketed).correct else 'NOT Comp-C'}"
        "  (tickets force conflicts at BOTH sites -> the"
    )
    print(
        "                   disagreement becomes an explicit contradiction;"
    )
    print(
        "                   a serializable site would have refused it online)"
    )
    print()


def main() -> None:
    sagas_demo()
    distributed_demo()
    federation_demo()


if __name__ == "__main__":
    main()
