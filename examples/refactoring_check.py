#!/usr/bin/env python3
"""Refactoring safety via Def. 18: compare systems of different shapes.

A monolithic service is split into components (its data accesses now run
through a storage layer).  Did the split change transactional behaviour?
Def. 18 gives the answer a precise form: extract each execution's *root
front* — the observed orders and input orders over the business
transactions — and compare; everything below the roots is
implementation detail.

The example builds three executions of the same two business
transactions:

1. the monolith;
2. a componentized version that preserves the serialization effect
   (equivalent root fronts — the refactoring is safe);
3. a componentized version whose storage layer serializes the other way
   (different root front — the refactoring changed behaviour, even
   though both executions are individually correct).

Run:  python examples/refactoring_check.py
"""

from repro import SystemBuilder
from repro.core.equivalence import (
    abstracts_to_flat,
    root_behaviour,
)


def monolith():
    """Both transactions run directly on one component."""
    b = SystemBuilder()
    b.transaction("Pay", "Service", ["p_read", "p_write"])
    b.transaction("Audit", "Service", ["a_scan"])
    b.conflict("Service", "p_write", "a_scan")
    b.executed("Service", ["p_read", "p_write", "a_scan"])  # Pay -> Audit
    return b.build()


def componentized(storage_order):
    """The same transactions, now delegating to a storage component."""
    b = SystemBuilder()
    b.transaction("Pay", "Service", ["p_step"])
    b.transaction("Audit", "Service", ["a_step"])
    b.conflict("Service", "p_step", "a_step")
    service_order = (
        ["p_step", "a_step"]
        if storage_order[0].startswith("p")
        else ["a_step", "p_step"]
    )
    b.executed("Service", service_order)
    b.transaction("p_step", "Storage", ["p_read", "p_write"])
    b.transaction("a_step", "Storage", ["a_scan"])
    b.conflict("Storage", "p_write", "a_scan")
    b.executed("Storage", list(storage_order))
    return b.build()


def describe(name, system):
    digest = root_behaviour(system)
    print(f"{name}:")
    print(f"  roots:    {digest['nodes']}")
    print(f"  observed: {digest['observed'] or '(none)'}")
    return digest


def main() -> None:
    flat = monolith()
    describe("monolith", flat)
    print()

    safe = componentized(["p_read", "p_write", "a_scan"])
    describe("componentized (storage serializes Pay first)", safe)
    print(
        "  equivalent to the monolith (Def. 18)? "
        f"{'YES' if abstracts_to_flat(safe, flat) else 'no'}"
    )
    print()

    changed = componentized(["a_scan", "p_read", "p_write"])
    describe("componentized (storage serializes Audit first)", changed)
    print(
        "  equivalent to the monolith (Def. 18)? "
        f"{'YES' if abstracts_to_flat(changed, flat) else 'NO'}"
    )
    print()
    print(
        "both componentized executions are Comp-C on their own; only the\n"
        "Def.-18 comparison reveals that the second one changed the\n"
        "observable serialization of the business transactions."
    )


if __name__ == "__main__":
    main()
