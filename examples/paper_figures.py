#!/usr/bin/env python3
"""Walk through the paper's four figures, end to end.

For each figure this prints the configuration (levels + execution
forest), runs the reduction front by front, and shows the verdict —
including Figure 3's counterexample cycle and Figure 4's forgotten
orders.

Run:  python examples/paper_figures.py
"""

from repro import check_composite_correctness, reduce_to_roots
from repro.core.conflicts import conflict_digest
from repro.figures import (
    figure1_system,
    figure2_system,
    figure3_system,
    figure4_system,
)
from repro.viz import render_forest, render_front, render_levels


def show(title: str, system, commentary: str) -> None:
    print("=" * 76)
    print(title)
    print("=" * 76)
    print(commentary.strip())
    print()
    print("schedule levels (Def. 9):")
    print(render_levels(system))
    print()
    print("execution forest (Def. 6):")
    print(render_forest(system))
    print()
    result = reduce_to_roots(system)
    for front in result.fronts:
        print(render_front(front))
    if result.succeeded:
        print(
            "\n=> Comp-C; serial witness: "
            + " << ".join(result.serial_order())
        )
    else:
        print(f"\n=> NOT Comp-C; {result.failure.describe()}")
    print()


def main() -> None:
    show(
        "Figure 1 — an arbitrary configuration",
        figure1_system(),
        """
        Five schedules on three levels; five composite transactions of
        different heights.  T3 (via SC/SE) and T5 (on SD) share no
        schedule, yet the reduction relates all roots and finds a serial
        witness.
        """,
    )

    fig2 = figure2_system()
    show(
        "Figure 2 — conflict and observed order",
        fig2,
        """
        Leaves o13 and o25 conflict on the shared bottom schedule S4.
        Watch the pair climb: (o13,o25) -> (v1,v2) -> (t11,t21) ->
        (T1,T2); transitivity then relates (T1,T3) as well.
        """,
    )
    result = reduce_to_roots(fig2)
    final = result.final_front
    print("generalized conflicts at the root front (Def. 11):")
    for a, b, source in conflict_digest(fig2, final.observed, final.nodes):
        print(f"  CON({a}, {b})  [from: {source}]")
    print()

    show(
        "Figure 3 — an incorrect execution",
        figure3_system(),
        """
        T1 = {p, q} and T2 = {r, s} live on different top schedules and
        interfere through two mid schedules in opposite directions
        (p before r on SP, s before q on SQ).  Both pairs originate on
        different schedules, so they are pulled up pessimistically —
        and at the root step T1 cannot be isolated.
        """,
    )

    show(
        "Figure 4 — a correct execution (forgotten orders)",
        figure4_system(),
        """
        The same leaf-level behaviour as Figure 3, but both roots are
        transactions of ONE top schedule that declares p,r and s,q
        non-conflicting.  The top schedule vouches for commutativity, so
        the crossed orders are forgotten at the meeting point and the
        reduction completes.
        """,
    )

    print("summary:")
    for name, factory in [
        ("figure 1", figure1_system),
        ("figure 2", figure2_system),
        ("figure 3", figure3_system),
        ("figure 4", figure4_system),
    ]:
        verdict = check_composite_correctness(factory())
        print(f"  {name}: {'Comp-C' if verdict.correct else 'NOT Comp-C'}")


if __name__ == "__main__":
    main()
