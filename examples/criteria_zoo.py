#!/usr/bin/env python3
"""The criteria zoo: one execution judged by every applicable criterion.

Generates random multilevel (stack) executions and classifies each under
seriality, LLSR, OPSR, SCC and Comp-C, then prints the acceptance
matrix — a miniature of the paper's §4 hierarchy discussion (LLSR and
OPSR are proper subsets of SCC = Comp-C; the H1 benchmark measures the
gaps at scale).

Also demonstrates saving an interesting execution to JSON and loading it
back (:mod:`repro.io`).

Run:  python examples/criteria_zoo.py
"""

import tempfile
from pathlib import Path

from repro.analysis import format_table
from repro.criteria.registry import classify
from repro.io import load, save
from repro.workloads.generator import WorkloadConfig, generate
from repro.workloads.topologies import stack_topology


def verdict_cell(value) -> str:
    if value is None:
        return "-"
    return "yes" if value else "NO"


def main() -> None:
    spec = stack_topology(2)
    rows = []
    interesting = None
    for seed in range(12):
        recorded = generate(
            spec,
            WorkloadConfig(
                seed=seed,
                roots=3,
                conflict_probability=0.2,
                layout="perturbed" if seed % 3 == 0 else "random",
            ),
        )
        verdicts = classify(recorded)
        rows.append(
            [
                f"seed {seed}",
                verdict_cell(verdicts["serial"]),
                verdict_cell(verdicts["llsr"]),
                verdict_cell(verdicts["opsr"]),
                verdict_cell(verdicts["scc"]),
                verdict_cell(verdicts["comp_c"]),
            ]
        )
        # Keep one execution that separates LLSR from Comp-C.
        if verdicts["comp_c"] and not verdicts["llsr"] and interesting is None:
            interesting = recorded
    print(
        format_table(
            ["execution", "serial", "LLSR", "OPSR", "SCC", "Comp-C"], rows
        )
    )
    print()
    print("invariants on display:")
    print("  * every 'yes' column is contained in the SCC/Comp-C columns;")
    print("  * SCC and Comp-C always agree (Theorem 2);")
    print("  * perturbed serial executions stay Comp-C even when the")
    print("    layout-sensitive criteria (serial, OPSR) reject them.")

    if interesting is not None:
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "separating_execution.json"
            save(interesting, path)
            restored = load(path)
            verdicts = classify(restored)
            print()
            print(
                f"saved/loaded a separating execution ({path.name}): "
                f"LLSR={verdict_cell(verdicts['llsr'])}, "
                f"Comp-C={verdict_cell(verdicts['comp_c'])}"
            )


if __name__ == "__main__":
    main()
