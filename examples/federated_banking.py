#!/usr/bin/env python3
"""Federated banking: a *fork* configuration (Def. 23) checked with FCC.

A payment coordinator executes money transfers across two independent
banks.  Each transfer debits an account at BankA and credits one at
BankB; the banks schedule independently.  This is exactly the
distributed-transaction shape the paper models as a fork, and Theorem 3
says fork conflict consistency (FCC) characterizes Comp-C here.

The example builds three executions:

1. both banks serialize the transfers the same way      -> correct;
2. the banks serialize the transfers in opposite ways   -> correct?!
   yes — the coordinator declares the two transfers commutative at its
   level (pure credit/debit arithmetic), so the crossed orders are
   forgiven (the fork assumption, Def. 23.3 writ large);
3. same opposite serialization, but the coordinator knows the transfers
   conflict (same account, balance checks)              -> incorrect,
   and the FCC verdict agrees with Comp-C instance by instance.

Run:  python examples/federated_banking.py
"""

from repro import SystemBuilder, check_composite_correctness
from repro.criteria import is_fcc, is_fork
from repro.exceptions import ScheduleAxiomError


def build(bank_b_order, coordinator_conflicts, *, validate=True):
    """Two transfers T1, T2, each forking to BankA and BankB."""
    b = SystemBuilder()
    b.transaction("T1", "Coordinator", ["debit1", "credit1"])
    b.transaction("T2", "Coordinator", ["debit2", "credit2"])
    for pair in coordinator_conflicts:
        b.conflict("Coordinator", *pair)
    b.executed(
        "Coordinator", ["debit1", "credit1", "debit2", "credit2"]
    )

    # BankA holds the debited accounts; both transfers hit account x.
    b.transaction("debit1", "BankA", ["a_r1", "a_w1"])
    b.transaction("debit2", "BankA", ["a_r2", "a_w2"])
    b.conflict("BankA", "a_w1", "a_r2")
    b.conflict("BankA", "a_w1", "a_w2")
    b.conflict("BankA", "a_r1", "a_w2")
    b.executed("BankA", ["a_r1", "a_w1", "a_r2", "a_w2"])  # T1 then T2

    # BankB holds the credited accounts; both transfers hit account y.
    b.transaction("credit1", "BankB", ["b_w1"])
    b.transaction("credit2", "BankB", ["b_w2"])
    b.conflict("BankB", "b_w1", "b_w2")
    b.executed("BankB", list(bank_b_order))
    return b.build(validate=validate)


def report(title, system):
    print("=" * 72)
    print(title)
    print("=" * 72)
    assert is_fork(system), "the configuration should be a fork"
    fcc = is_fcc(system)
    comp = check_composite_correctness(system)
    print(f"  FCC (Def. 24):    {'yes' if fcc else 'NO'}")
    print(f"  Comp-C (Thm. 1):  {'yes' if comp.correct else 'NO'}")
    assert fcc == comp.correct, "Theorem 3 must hold"
    if comp.correct:
        print("  serial witness:  " + " << ".join(comp.serial_witness))
    else:
        print("  counterexample:  " + comp.failure.describe())
    print()


def main() -> None:
    report(
        "1. banks agree on the order (BankB also serializes T1 first)",
        build(["b_w1", "b_w2"], coordinator_conflicts=[]),
    )
    report(
        "2. banks disagree, but the coordinator vouches the transfers "
        "commute",
        build(["b_w2", "b_w1"], coordinator_conflicts=[]),
    )
    conflicts = [("debit1", "debit2"), ("credit1", "credit2")]
    print("=" * 72)
    print("3. banks disagree and the coordinator knows the transfers conflict")
    print("=" * 72)
    # A Def.-3-compliant BankB cannot even *produce* this behaviour: the
    # coordinator's committed order arrives as BankB's input order, and
    # axiom 1a obliges BankB to serialize the conflicting credits
    # accordingly.  Model validation refuses the history:
    try:
        build(["b_w2", "b_w1"], conflicts)
        raise AssertionError("validation should have refused this model")
    except ScheduleAxiomError as err:
        print(f"  model validation: REFUSED — {err}")
    # A rogue component that ignored its input orders could still emit
    # it; the checker then rejects the execution at the front CC step:
    rogue = build(["b_w2", "b_w1"], conflicts, validate=False)
    comp = check_composite_correctness(rogue)
    print(f"  Comp-C on the rogue history: {'yes' if comp.correct else 'NO'}")
    print("  counterexample:  " + comp.failure.describe())
    print()


if __name__ == "__main__":
    main()
