"""Tests for execution-lane rendering."""

from repro.viz.timeline import interleaving_profile, render_lanes
from repro.workloads.generator import WorkloadConfig, generate
from repro.workloads.topologies import join_topology, stack_topology


def make(layout="random", seed=0):
    return generate(
        join_topology(2),
        WorkloadConfig(
            seed=seed, roots=4, conflict_probability=0.2, layout=layout
        ),
    )


class TestRenderLanes:
    def test_every_schedule_gets_a_lane(self):
        rec = make()
        text = render_lanes(rec)
        for name in rec.executions:
            assert name in text

    def test_lanes_show_root_names(self):
        rec = make()
        assert "R1" in render_lanes(rec)

    def test_show_ops(self):
        rec = make()
        text = render_lanes(rec, show_ops=True)
        some_op = next(iter(rec.executions["J"]))
        assert some_op in text

    def test_width_cap(self):
        rec = generate(
            stack_topology(2),
            WorkloadConfig(seed=1, roots=12, conflict_probability=0.05),
        )
        for line in render_lanes(rec, max_width=40).splitlines():
            # the lane body is capped at max_width; the lane name and the
            # "(N ops, M transactions)" annotation come on top
            assert len(line) <= 40 + 45

    def test_empty_executions(self):
        from repro.criteria.registry import RecordedExecution

        rec = make()
        bare = RecordedExecution(system=rec.system, executions={})
        assert render_lanes(bare) == ""


class TestInterleavingProfile:
    def test_serial_layout_profiles_to_zero(self):
        rec = make(layout="serial")
        profile = interleaving_profile(rec)
        assert all(v == 0 for v in profile.values())

    def test_random_layout_usually_interleaves(self):
        assert any(
            sum(interleaving_profile(make(seed=s)).values()) > 0
            for s in range(5)
        )
