"""Unit tests for DOT export and ASCII rendering."""

from repro.core.reduction import reduce_to_roots
from repro.figures import figure1_system, figure3_system
from repro.viz.ascii_art import render_forest, render_front, render_levels
from repro.viz.dot import forest_dot, front_dot, invocation_graph_dot


class TestDot:
    def test_invocation_graph_dot(self):
        text = invocation_graph_dot(figure1_system())
        assert text.startswith("digraph")
        assert '"SA" -> "SB"' in text
        assert "rank=same" in text
        assert text.rstrip().endswith("}")

    def test_forest_dot_marks_roots_and_leaves(self):
        text = forest_dot(figure1_system())
        assert "doubleoctagon" in text  # roots
        assert "ellipse" in text  # leaves
        assert '"T1" -> "b1"' in text

    def test_front_dot(self):
        result = reduce_to_roots(figure1_system())
        text = front_dot(result.fronts[1], title="level 1")
        assert "digraph" in text
        assert "style=dashed" in text or "->" in text

    def test_quoting(self):
        text = invocation_graph_dot(figure1_system())
        assert '"SA"' in text


class TestAscii:
    def test_render_levels(self):
        text = render_levels(figure1_system())
        assert "level 3: SA" in text
        assert "level 1: SD, SE" in text

    def test_render_forest_contains_all_roots(self):
        text = render_forest(figure1_system())
        for root in ("T1", "T2", "T3", "T4", "T5"):
            assert root in text
        assert "[SB]" in text  # schedule annotations

    def test_render_forest_nesting(self):
        text = render_forest(figure1_system())
        lines = text.splitlines()
        t1 = lines.index("T1  [SA]")
        assert "x1" in lines[t1 + 1]

    def test_render_front(self):
        result = reduce_to_roots(figure3_system())
        text = render_front(result.fronts[2])
        assert "level 2 front" in text
        assert "observed:" in text
        assert "CC:" in text
