"""Tests for the pairwise criterion agreement matrix."""

from repro.analysis.agreement import (
    AgreementMatrix,
    agreement_matrix,
    format_agreement,
)


class TestAgreementMatrix:
    def setup_method(self):
        self.matrix = agreement_matrix(trials=90, seed=0)

    def test_trials_counted(self):
        assert self.matrix.trials >= 60

    def test_containments_have_one_empty_direction(self):
        # LLSR ⊆ Comp-C and OPSR ⊆ SCC: the "narrow accepts, wide
        # rejects" cell must be zero.
        assert self.matrix.accepts_only("llsr", "comp_c") == 0
        assert self.matrix.accepts_only("opsr", "scc") == 0
        assert self.matrix.accepts_only("scc", "comp_c") == 0
        assert self.matrix.accepts_only("comp_c", "scc") == 0

    def test_llsr_and_opsr_are_incomparable(self):
        # The paper orders both below SCC but not against each other;
        # the mixed ensemble (random + perturbed layouts) witnesses both
        # disagreement directions.
        assert self.matrix.incomparable("llsr", "opsr")

    def test_agreement_rates_bounded(self):
        rate = self.matrix.agreement_rate("scc", "comp_c")
        assert rate == 1.0  # Theorem 2
        assert 0.0 <= self.matrix.agreement_rate("llsr", "opsr") <= 1.0

    def test_format(self):
        text = format_agreement(self.matrix)
        assert "rows accept" in text
        assert "comp_c" in text

    def test_empty_matrix(self):
        empty = AgreementMatrix(trials=0)
        assert empty.agreement_rate("llsr", "scc") == 1.0
        assert not empty.incomparable("llsr", "opsr")
