"""Tests for the supervised batch runner: timeouts, retries, hung
workers, quarantine, and the keep-going failure report."""

import os
import time

import pytest

from repro.analysis.batch import BatchReport, run_batch, run_batch_report
from repro.analysis.supervise import (
    REASON_EXCEPTION,
    REASON_HUNG,
    REASON_TIMEOUT,
    BatchSupervisor,
    QuarantinedTask,
    QuarantineReport,
    time_limit,
)
from repro.exceptions import BatchTaskError, TaskTimeoutError
from repro.simulator.retry import ExponentialBackoff


def square(task):
    return task * task


def fail_on_three(task):
    if task == 3:
        raise ValueError("boom")
    return task


def sleepy(task):
    """Sleeps when the task is the sentinel; SIGALRM interrupts it."""
    if task == "sleep":
        time.sleep(10.0)
    return task


def flaky(task):
    """Fails until its attempt-counter file reaches the threshold."""
    path, needed = task
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("x")
    attempts = os.path.getsize(path)
    if attempts < needed:
        raise RuntimeError(f"flaky attempt {attempts}")
    return attempts


def no_sleep(_delay):
    return None


class TestTimeLimit:
    def test_expires(self):
        with pytest.raises(TaskTimeoutError, match="wall-clock budget"):
            with time_limit(0.05):
                time.sleep(5.0)

    def test_disabled_for_none_and_nonpositive(self):
        with time_limit(None):
            pass
        with time_limit(0):
            pass
        with time_limit(-1.0):
            pass

    def test_no_alarm_left_armed(self):
        import signal

        with time_limit(5.0):
            pass
        assert signal.getitimer(signal.ITIMER_REAL)[0] == 0.0

    def test_nested_inner_limit_restores_outer_budget(self):
        """The nesting bugfix: an inner time_limit used to zero the
        outer timer on exit, silently unbounding the outer guard.  Now
        the outer deadline still fires after the inner block ends."""
        with pytest.raises(TaskTimeoutError):
            with time_limit(0.2):
                with time_limit(5.0):
                    time.sleep(0.05)  # inner exits cleanly
                time.sleep(5.0)  # outer must still be armed

    def test_nested_outer_deadline_already_due_fires_promptly(self):
        """An inner block that outlives the outer budget: the restored
        outer timer is already overdue and must fire as soon as the
        inner guard hands control back."""
        started = time.monotonic()
        with pytest.raises(TaskTimeoutError):
            with time_limit(0.05):
                with time_limit(5.0):
                    # survive the outer deadline inside the inner
                    # guard: SIGALRM is armed for the INNER budget
                    time.sleep(0.15)
                time.sleep(5.0)
        assert time.monotonic() - started < 2.0

    def test_nested_inner_expiry_still_raises(self):
        import signal

        with pytest.raises(TaskTimeoutError):
            with time_limit(30.0):
                with time_limit(0.05):
                    time.sleep(5.0)
        # unwound completely: nothing left armed after the outer exits
        assert signal.getitimer(signal.ITIMER_REAL)[0] == 0.0


class TestQuarantine:
    def test_keep_going_quarantines_and_finishes(self):
        report = run_batch_report(
            [1, 2, 3, 4],
            fail_on_three,
            supervisor=BatchSupervisor(fail_fast=False),
        )
        assert report.results == [1, 2, None, 4]
        assert report.completed == {0: 1, 1: 2, 3: 4}
        assert report.missing == (2,)
        assert len(report.quarantine) == 1
        entry = report.quarantine.entries[0]
        assert entry.index == 2
        assert entry.reason == REASON_EXCEPTION
        assert "boom" in entry.error
        assert "boom" in entry.traceback
        assert entry.task_repr == "3"

    def test_keep_going_parallel(self):
        report = run_batch_report(
            [3, 1, 3, 2, 5],
            fail_on_three,
            workers=2,
            supervisor=BatchSupervisor(fail_fast=False),
        )
        assert report.results == [None, 1, None, 2, 5]
        assert report.quarantine.indices() == [0, 2]

    def test_fail_fast_raises_with_partial_results(self):
        with pytest.raises(BatchTaskError) as excinfo:
            run_batch_report(
                [1, 2, 3, 4],
                fail_on_three,
                supervisor=BatchSupervisor(fail_fast=True),
            )
        err = excinfo.value
        assert err.index == 2
        assert err.completed == {0: 1, 1: 2, 3: 4}
        assert err.missing == (2,)

    def test_unsupervised_run_batch_carries_partial_results(self):
        """The keep-going bugfix: even the plain fail-fast path no
        longer throws away completed cells."""
        with pytest.raises(BatchTaskError) as excinfo:
            run_batch([1, 2, 3, 4], fail_on_three, workers=2)
        err = excinfo.value
        assert err.completed == {0: 1, 1: 2, 3: 4}
        assert err.missing == (2,)

    def test_report_renders(self):
        report = QuarantineReport()
        report.add(
            QuarantinedTask(
                index=2,
                task_repr="(spec, 'cc', 7)",
                reason=REASON_TIMEOUT,
                error="TaskTimeoutError(...)",
                attempts=3,
            )
        )
        text = report.render()
        assert "task #2" in text
        assert "timeout" in text
        assert "3 attempt(s)" in text
        assert "(spec, 'cc', 7)" in text

    def test_roundtrip_dict(self):
        entry = QuarantinedTask(
            index=1, task_repr="t", reason=REASON_HUNG, error="e",
            traceback="tb", attempts=2,
        )
        assert QuarantinedTask.from_dict(entry.to_dict()) == entry


class TestQuarantineMerge:
    @staticmethod
    def _entry(index, reason=REASON_EXCEPTION, error="e"):
        return QuarantinedTask(
            index=index, task_repr=f"t{index}", reason=reason, error=error
        )

    def test_merge_orders_by_task_index(self):
        a = QuarantineReport()
        a.add(self._entry(7))
        a.add(self._entry(2))
        b = QuarantineReport()
        b.add(self._entry(5))
        merged = QuarantineReport.merge([a, b])
        assert merged.indices() == [2, 5, 7]

    def test_merge_is_order_independent(self):
        """Cross-shard determinism: whatever order the per-shard
        reports arrive in, the merge is the same report."""
        parts = []
        for indices in ([3, 1], [9], [4, 0]):
            report = QuarantineReport()
            for index in indices:
                report.add(self._entry(index))
            parts.append(report)
        forward = QuarantineReport.merge(parts)
        backward = QuarantineReport.merge(reversed(parts))
        assert forward.indices() == backward.indices() == [0, 1, 3, 4, 9]
        assert [e.to_dict() for e in forward.entries] == [
            e.to_dict() for e in backward.entries
        ]

    def test_merge_deduplicates_replayed_entries(self):
        """At-least-once delivery: the same task quarantined by two
        shard attempts appears once, first report wins."""
        a = QuarantineReport()
        a.add(self._entry(4, error="first"))
        b = QuarantineReport()
        b.add(self._entry(4, error="second"))
        merged = QuarantineReport.merge([a, b])
        assert len(merged) == 1
        assert merged.entries[0].error == "first"

    def test_merge_of_nothing_is_empty(self):
        assert len(QuarantineReport.merge([])) == 0


class TestTimeoutsAndRetries:
    def test_task_timeout_quarantines(self):
        report = run_batch_report(
            ["a", "sleep", "b"],
            sleepy,
            supervisor=BatchSupervisor(task_timeout=0.1, fail_fast=False),
        )
        assert report.results == ["a", None, "b"]
        entry = report.quarantine.entries[0]
        assert entry.index == 1
        assert entry.reason == REASON_TIMEOUT

    def test_retry_until_success(self, tmp_path):
        counter = tmp_path / "attempts"
        report = run_batch_report(
            [(str(counter), 3)],
            flaky,
            supervisor=BatchSupervisor(
                max_attempts=5, fail_fast=False, sleep=no_sleep
            ),
        )
        assert report.results == [3]
        assert counter.read_text() == "xxx"
        assert not report.quarantine

    def test_retries_exhausted_quarantines_with_attempt_count(self, tmp_path):
        counter = tmp_path / "attempts"
        report = run_batch_report(
            [(str(counter), 99)],
            flaky,
            supervisor=BatchSupervisor(
                max_attempts=3, fail_fast=False, sleep=no_sleep
            ),
        )
        assert report.results == [None]
        entry = report.quarantine.entries[0]
        assert entry.attempts == 3
        assert counter.read_text() == "xxx"


class TestHungWorkers:
    def test_hung_worker_is_quarantined_and_grid_finishes(self):
        """Parent-side hang detection: a worker that stops delivering
        results within the hang deadline is declared hung and replaced;
        the rest of the grid still completes."""
        report = run_batch_report(
            ["a", "sleep", "b", "c"],
            sleepy,
            workers=2,
            supervisor=BatchSupervisor(hang_timeout=1.0, fail_fast=False),
        )
        assert report.results[0] == "a"
        assert report.results[2] == "b"
        assert report.results[3] == "c"
        assert report.results[1] is None
        entry = report.quarantine.entries[0]
        assert entry.index == 1
        assert entry.reason == REASON_HUNG
        assert "hung" in entry.error

    def test_effective_hang_timeout_derivation(self):
        assert BatchSupervisor().effective_hang_timeout() is None
        assert BatchSupervisor(
            task_timeout=2.0
        ).effective_hang_timeout() == pytest.approx(11.0)
        assert BatchSupervisor(
            task_timeout=2.0, hang_timeout=3.0
        ).effective_hang_timeout() == 3.0
        assert BatchSupervisor(hang_timeout=0).effective_hang_timeout() is None


class TestSeededJitter:
    def test_task_rng_is_a_pure_function_of_seed_and_index(self):
        a = BatchSupervisor(retry_seed=7).task_rng(3).random()
        b = BatchSupervisor(retry_seed=7).task_rng(3).random()
        c = BatchSupervisor(retry_seed=7).task_rng(4).random()
        d = BatchSupervisor(retry_seed=8).task_rng(3).random()
        assert a == b
        assert a != c
        assert a != d

    def test_seeded_policy_ignores_caller_rng(self):
        import random

        policy = ExponentialBackoff(0.5, seed=42)
        first = [policy.delay(i, random.Random(0)) for i in range(1, 4)]
        policy = ExponentialBackoff(0.5, seed=42)
        second = [policy.delay(i, random.Random(999)) for i in range(1, 4)]
        assert first == second

    def test_unseeded_policy_uses_caller_rng(self):
        import random

        policy = ExponentialBackoff(0.5)
        a = policy.delay(1, random.Random(0))
        b = policy.delay(1, random.Random(0))
        assert a == b  # same caller stream, same draw
        c = policy.delay(1, random.Random(1))
        assert a != c

    def test_supervised_serial_equals_parallel(self):
        supervisor = BatchSupervisor(fail_fast=False, retry_seed=3)
        serial = run_batch_report(
            list(range(8)), square, workers=1, supervisor=supervisor
        )
        parallel = run_batch_report(
            list(range(8)), square, workers=3, supervisor=supervisor
        )
        assert serial.results == parallel.results == [n * n for n in range(8)]


class TestBatchReportShape:
    def test_missing_is_empty_on_success(self):
        report = run_batch_report([1, 2], square)
        assert isinstance(report, BatchReport)
        assert report.missing == ()
        assert not report.quarantine
