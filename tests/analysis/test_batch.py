"""Tests for the parallel batch runner and its determinism contract."""

import dataclasses

import pytest

from repro.analysis.batch import (
    MERGE_EXEMPT_FIELDS,
    MERGE_RULES,
    chaos_grid,
    merge_metrics,
    run_batch,
)
from repro.analysis.protocols import (
    evaluate_protocol,
    evaluate_protocol_under_faults,
)
from repro.exceptions import BatchTaskError
from repro.simulator.metrics import Metrics
from repro.workloads.topologies import stack_topology


def square(task):
    return task * task


def fail_on_three(task):
    if task == 3:
        raise ValueError("boom")
    return task


class TestRunBatch:
    def test_serial_matches_map(self):
        assert run_batch(range(7), square) == [n * n for n in range(7)]

    def test_parallel_results_in_task_order(self):
        assert run_batch(range(20), square, workers=4) == [
            n * n for n in range(20)
        ]

    def test_single_task_stays_in_process(self):
        assert run_batch([5], square, workers=8) == [25]

    def test_empty(self):
        assert run_batch([], square, workers=4) == []

    def test_worker_exception_carries_task(self):
        """A raising worker surfaces as BatchTaskError naming the
        failing task — ProcessPoolExecutor.map alone loses which cell
        died."""
        with pytest.raises(BatchTaskError) as excinfo:
            run_batch([1, 2, 3], fail_on_three)
        assert excinfo.value.index == 2
        assert excinfo.value.task == 3
        assert "ValueError" in str(excinfo.value)
        assert "boom" in excinfo.value.worker_traceback

        with pytest.raises(BatchTaskError) as excinfo:
            run_batch([1, 2, 3, 4], fail_on_three, workers=2)
        assert excinfo.value.index == 2
        assert excinfo.value.task == 3
        assert "boom" in excinfo.value.worker_traceback

    def test_earliest_failure_wins(self):
        """With several failing cells, the error is deterministic: the
        earliest failing task in submission order."""
        with pytest.raises(BatchTaskError) as excinfo:
            run_batch([3, 1, 3, 3], fail_on_three, workers=2)
        assert excinfo.value.index == 0
        assert excinfo.value.task == 3

    def test_explicit_chunksize(self):
        assert run_batch(range(10), square, workers=2, chunksize=3) == [
            n * n for n in range(10)
        ]


class TestMergeMetrics:
    def _sample(self, commits, end_time, reason_count):
        metrics = Metrics(
            commits=commits,
            gave_up=1,
            operations=10 * commits,
            response_times=[0.5 * commits, 1.5],
            end_time=end_time,
            aborts_by_reason={"conflict": reason_count},
            retries_by_reason={"conflict": reason_count - 1}
            if reason_count
            else {},
            giveups_by_reason={"deadlock": 1},
            faults_injected={"crash": reason_count},
            downtime={"c1": 0.25 * commits},
            components=3,
        )
        return metrics

    def test_counters_sum_and_horizons_add(self):
        merged = merge_metrics([self._sample(2, 4.0, 3), self._sample(5, 2.0, 1)])
        assert merged.commits == 7
        assert merged.gave_up == 2
        assert merged.operations == 70
        # Horizons add: each part observed its components for its own
        # end_time, so the merged capacity window is their sum.
        assert merged.end_time == 6.0
        assert merged.components == 3
        assert merged.aborts_by_reason == {"conflict": 4}
        assert merged.giveups_by_reason == {"deadlock": 2}
        assert merged.faults_injected == {"crash": 4}
        assert merged.downtime == {"c1": 0.25 * 7}
        assert merged.response_times == [1.0, 1.5, 2.5, 1.5]

    def test_merge_of_one_is_identity(self):
        part = self._sample(2, 4.0, 3)
        merged = merge_metrics([part])
        assert merged.commits == part.commits
        assert merged.response_times == part.response_times
        assert merged.aborts_by_reason == part.aborts_by_reason
        assert merged.end_time == part.end_time
        assert merged.availability == part.availability

    def test_every_metrics_field_has_a_merge_rule(self):
        """Regression for the dropped-counter bug: every Metrics
        dataclass field must be merged or explicitly exempted, so a
        newly added counter cannot silently vanish from sharded reports
        (the fate of ``static_precheck_skips`` before MERGE_RULES)."""
        names = {spec.name for spec in dataclasses.fields(Metrics)}
        covered = set(MERGE_RULES) | set(MERGE_EXEMPT_FIELDS)
        assert names <= covered, f"unmerged fields: {sorted(names - covered)}"
        # and no stale rules for fields that no longer exist
        assert set(MERGE_RULES) <= names

    def test_static_precheck_skips_survive_merge(self):
        a = Metrics(static_precheck_skips=3)
        b = Metrics(static_precheck_skips=4)
        assert merge_metrics([a, b]).static_precheck_skips == 7

    def test_merged_availability_is_mean_of_equal_horizon_parts(self):
        """Regression for the skewed-availability bug: summing downtime
        while taking max(end_time) divided two runs' downtime by one
        run's horizon.  With summed horizons, merging equal-horizon
        parts yields exactly the mean of their availabilities."""
        a = Metrics(end_time=10.0, components=2, downtime={"c1": 2.0})
        b = Metrics(end_time=10.0, components=2, downtime={"c1": 6.0})
        merged = merge_metrics([a, b])
        assert merged.end_time == 20.0
        assert merged.availability == pytest.approx(
            (a.availability + b.availability) / 2
        )
        # sanity: the old max-horizon semantics would have reported
        # 1 - 8/(2*10) = 0.6, below BOTH parts' own numbers
        assert merged.availability == pytest.approx(0.8)


class TestParallelDeterminism:
    """--workers N must be bit-identical to --workers 1."""

    def test_evaluate_protocol(self):
        spec = stack_topology(2)
        serial = evaluate_protocol(
            spec, "cc", clients=3, seeds=(0, 1, 2, 3), workers=1
        )
        parallel = evaluate_protocol(
            spec, "cc", clients=3, seeds=(0, 1, 2, 3), workers=2
        )
        assert serial == parallel

    def test_chaos_grid(self):
        spec = stack_topology(2)
        serial = chaos_grid(
            spec, ("cc", "s2pl"), (0, 1), workers=1, intensity=0.5
        )
        parallel = chaos_grid(
            spec, ("cc", "s2pl"), (0, 1), workers=2, intensity=0.5
        )
        assert serial == parallel

    def test_evaluate_protocol_under_faults(self):
        spec = stack_topology(2)
        serial = evaluate_protocol_under_faults(
            spec, "cc", seeds=(0, 1, 2), intensity=0.5, workers=1
        )
        parallel = evaluate_protocol_under_faults(
            spec, "cc", seeds=(0, 1, 2), intensity=0.5, workers=3
        )
        assert serial == parallel
