"""Tests for the consolidated experiment report."""

from repro.analysis.report import build_report
from repro.cli import main


class TestBuildReport:
    def test_sections_present(self):
        text = build_report(trials=6)
        for needle in (
            "# composite-tx experiment report",
            "## Figures (F1–F4)",
            "## Theorem 1 (T1)",
            "## Theorem 2 (T2)",
            "## Theorem 3 (T3)",
            "## Theorem 4 (T4)",
            "## Hierarchy (H1)",
            "## Checker cost (P2)",
            "## Ablation (A1)",
        ):
            assert needle in text

    def test_verdicts_recorded(self):
        text = build_report(trials=6)
        assert "NOT Comp-C" in text  # figure 3
        assert "containment violations: **0**" in text

    def test_protocols_optional(self):
        without = build_report(trials=4)
        assert "Protocols on the join" not in without


class TestCliReport:
    def test_report_command(self, tmp_path, capsys):
        out = tmp_path / "r.md"
        assert main(["report", "-o", str(out), "--trials", "4"]) == 0
        assert "report written" in capsys.readouterr().out
        assert out.read_text().startswith("# composite-tx experiment report")
