"""Tests for batch checkpoints: the value codec, the session/section
protocol, ambient resume, and the kill-and-resume byte-identity
contract (SIGKILL mid-grid, resume, compare against uninterrupted)."""

import json
import os
import subprocess
import sys
import time

import pytest

import repro
from repro.analysis.batch import run_batch_report
from repro.analysis.checkpoint import (
    CheckpointSession,
    batch_fingerprint,
    checkpointing,
    decode_value,
    encode_value,
    read_checkpoint,
)
from repro.analysis.protocols import ChaosRun
from repro.exceptions import CheckpointError

SRC = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def counting_square(task):
    """Worker that logs every real invocation, so resume tests can
    assert restored tasks were NOT re-run."""
    path, value = task
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(f"{value}\n")
    return value * value


class TestValueCodec:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            7,
            0.1,
            1e300,
            "text",
            [1, "two", None],
            (1, 2, (3, 4)),
            {"a": [1, 2], "b": {"c": 3.5}},
            {1: "int-keyed", (2, 3): "tuple-keyed"},
            ChaosRun(
                commits=3,
                gave_up=1,
                throughput=0.25,
                abort_rate=0.1,
                availability=0.9,
                discarded_operations=2,
                aborts_by_reason={"conflict": 4},
                faults_injected={"crash": 1},
                assembled=True,
                comp_c=True,
                lint_codes={"CTX301": 2},
            ),
        ],
    )
    def test_roundtrip(self, value):
        assert decode_value(encode_value(value)) == value

    def test_floats_roundtrip_exactly_through_json(self):
        """The byte-identity contract leans on repr shortest-round-trip
        floats surviving the JSON encode/decode unchanged."""
        values = [0.1 + 0.2, 1 / 3, 2.0 ** -1074, 1.7976931348623157e308]
        text = json.dumps(encode_value(values))
        assert decode_value(json.loads(text)) == values

    def test_unsupported_type_is_refused(self):
        with pytest.raises(CheckpointError, match="cannot checkpoint"):
            encode_value(object())

    def test_reserved_key_collision_uses_tagged_form(self):
        tricky = {"__kind__": "not-a-tag", "x": 1}
        assert decode_value(encode_value(tricky)) == tricky


class TestSessionProtocol:
    def test_checkpoint_written_and_restored(self, tmp_path):
        ck = tmp_path / "ck.json"
        log = tmp_path / "calls.log"
        tasks = [(str(log), n) for n in range(5)]

        with checkpointing(CheckpointSession(str(ck), argv=["x"])):
            first = run_batch_report(tasks, counting_square)
        assert first.results == [n * n for n in range(5)]
        assert log.read_text().count("\n") == 5

        # resume: every task restored, worker never called again,
        # results identical
        with checkpointing(CheckpointSession.resume(str(ck))):
            second = run_batch_report(tasks, counting_square)
        assert second.results == first.results
        assert log.read_text().count("\n") == 5

    def test_partial_checkpoint_only_reruns_missing(self, tmp_path):
        ck = tmp_path / "ck.json"
        log = tmp_path / "calls.log"
        tasks = [(str(log), n) for n in range(4)]

        with checkpointing(CheckpointSession(str(ck))):
            run_batch_report(tasks, counting_square)
        # drop the last two completed records, simulating a kill
        document = json.loads(ck.read_text())
        section = document["sections"][0]
        section["completed"] = section["completed"][:2]
        ck.write_text(json.dumps(document))

        with checkpointing(CheckpointSession.resume(str(ck))):
            report = run_batch_report(tasks, counting_square)
        assert report.results == [0, 1, 4, 9]
        # 4 original calls + exactly the 2 dropped ones re-ran
        assert log.read_text().count("\n") == 6

    def test_fingerprint_mismatch_refuses_resume(self, tmp_path):
        ck = tmp_path / "ck.json"
        with checkpointing(CheckpointSession(str(ck))):
            run_batch_report([(str(tmp_path / "l"), 1)], counting_square)
        with checkpointing(CheckpointSession.resume(str(ck))):
            with pytest.raises(CheckpointError, match="different grid"):
                run_batch_report(
                    [(str(tmp_path / "l"), 999)], counting_square
                )

    def test_fingerprint_depends_on_worker_and_tasks(self):
        a = batch_fingerprint(counting_square, [1, 2, 3])
        assert a == batch_fingerprint(counting_square, [1, 2, 3])
        assert a != batch_fingerprint(counting_square, [1, 2, 4])
        assert a != batch_fingerprint(json.dumps, [1, 2, 3])

    def test_checkpoint_file_is_always_complete_json(self, tmp_path):
        """Atomic rewrite: at every flush the file on disk parses."""
        ck = tmp_path / "ck.json"
        session = CheckpointSession(str(ck), interval=1)
        with checkpointing(session):
            tasks = [(str(tmp_path / "log"), n) for n in range(3)]
            run_batch_report(tasks, counting_square)
            document = json.loads(ck.read_text())
            assert document["v"] == 1

    def test_read_checkpoint_rejects_garbage(self, tmp_path):
        missing = tmp_path / "nope.json"
        with pytest.raises(CheckpointError, match="no such checkpoint"):
            read_checkpoint(str(missing))
        bad = tmp_path / "bad.json"
        bad.write_text("{torn")
        with pytest.raises(CheckpointError, match="unreadable"):
            read_checkpoint(str(bad))
        wrong = tmp_path / "wrong.json"
        wrong.write_text('{"v": 99}')
        with pytest.raises(CheckpointError, match="version"):
            read_checkpoint(str(wrong))


CHAOS_ARGS = [
    "chaos",
    "--runs",
    "4",
    "--transactions",
    "8",
    "--clients",
    "4",
    "--workers",
    "2",
    "--seed",
    "0",
]


def _run_cli(args, cwd, timeout=180):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestKillAndResume:
    def test_sigkilled_grid_resumes_byte_identical(self, tmp_path):
        """The headline contract: SIGKILL a checkpointed chaos grid
        mid-run, `composite-tx resume` it, and the merged metrics AND
        canonical telemetry are byte-identical to an uninterrupted
        run's."""
        from repro.obs import canonical_dumps, read_records

        # uninterrupted reference run
        ref = _run_cli(
            CHAOS_ARGS
            + ["--telemetry-out", str(tmp_path / "ref.jsonl")],
            cwd=str(tmp_path),
        )
        assert ref.returncode == 0, ref.stderr

        # checkpointed run, SIGKILLed as soon as the checkpoint shows
        # at least one completed cell
        ck = tmp_path / "ck.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC
        victim = subprocess.Popen(
            [sys.executable, "-m", "repro", *CHAOS_ARGS]
            + [
                "--telemetry-out",
                str(tmp_path / "out.jsonl"),
                "--checkpoint-out",
                str(ck),
            ],
            cwd=str(tmp_path),
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.time() + 120
            while time.time() < deadline:
                if victim.poll() is not None:
                    break
                try:
                    document = json.loads(ck.read_text())
                    if document["sections"][0]["completed"]:
                        break
                except (OSError, json.JSONDecodeError, KeyError, IndexError):
                    pass
                time.sleep(0.005)
            killed_mid_run = victim.poll() is None
            victim.kill()
        finally:
            victim.wait(timeout=60)

        # the checkpoint on disk is complete JSON despite the SIGKILL
        document = json.loads(ck.read_text())
        assert document["v"] == 1
        completed = sum(
            len(section["completed"]) for section in document["sections"]
        )
        if killed_mid_run:
            assert completed < 16  # genuinely interrupted

        resumed = _run_cli(["resume", str(ck)], cwd=str(tmp_path))
        assert resumed.returncode == 0, resumed.stderr

        if killed_mid_run:
            assert resumed.stdout == ref.stdout
            ours = canonical_dumps(read_records(str(tmp_path / "out.jsonl")))
            theirs = canonical_dumps(
                read_records(str(tmp_path / "ref.jsonl"))
            )
            assert ours == theirs
        else:
            # the victim finished before the kill landed: the
            # checkpoint records a completed run, and resume says so
            # instead of re-dispatching
            assert "nothing to resume" in resumed.stdout

    def test_resume_without_recorded_argv_fails_cleanly(self, tmp_path):
        ck = tmp_path / "ck.json"
        ck.write_text(
            '{"v": 1, "argv": [], "sections": '
            '[{"fingerprint": "x", "total": 2, "completed": [], '
            '"quarantined": []}]}'
        )
        result = _run_cli(["resume", str(ck)], cwd=str(tmp_path))
        assert result.returncode != 0
        assert "no command line recorded" in result.stderr


class TestCheckpointComplete:
    """The nothing-to-resume detection (`checkpoint_complete`)."""

    @staticmethod
    def _section(total, completed, quarantined=0):
        return {
            "fingerprint": "fp",
            "total": total,
            "completed": [
                {"index": i, "result": None, "events": []}
                for i in range(completed)
            ],
            "quarantined": [
                {"index": completed + i} for i in range(quarantined)
            ],
        }

    def test_clean_exit_flag_wins(self):
        from repro.analysis.checkpoint import checkpoint_complete

        assert checkpoint_complete({"complete": True, "sections": []})

    def test_fully_recorded_sections_are_complete(self):
        from repro.analysis.checkpoint import checkpoint_complete

        document = {
            "sections": [self._section(3, 3), self._section(4, 2, 2)]
        }
        assert checkpoint_complete(document)

    def test_unfinished_section_is_incomplete(self):
        from repro.analysis.checkpoint import checkpoint_complete

        document = {
            "sections": [self._section(3, 3), self._section(4, 2, 1)]
        }
        assert not checkpoint_complete(document)

    def test_empty_and_malformed_documents_are_incomplete(self):
        from repro.analysis.checkpoint import checkpoint_complete

        assert not checkpoint_complete({})
        assert not checkpoint_complete({"sections": []})
        assert not checkpoint_complete({"sections": "nope"})
        assert not checkpoint_complete({"sections": [{"total": "many"}]})

    def test_clean_session_exit_marks_checkpoint_complete(self, tmp_path):
        from repro.analysis.checkpoint import checkpoint_complete

        path = tmp_path / "ck.json"
        session = CheckpointSession(str(path), argv=["chaos"])
        with checkpointing(session):
            run_batch_report(
                [(str(tmp_path / "log"), v) for v in range(3)],
                counting_square,
            )
        assert checkpoint_complete(json.loads(path.read_text()))

    def test_killed_session_checkpoint_stays_incomplete(self, tmp_path):
        from repro.analysis.checkpoint import checkpoint_complete

        path = tmp_path / "ck.json"
        session = CheckpointSession(str(path), argv=["chaos"], interval=1)
        with pytest.raises(RuntimeError):
            with checkpointing(session):
                section = session.section("fp", 3)
                section.record(0, 1, [])
                raise RuntimeError("simulated crash")
        assert not checkpoint_complete(json.loads(path.read_text()))

    def test_resume_of_complete_checkpoint_prints_and_exits_zero(
        self, tmp_path
    ):
        """Satellite contract: resuming an already-complete checkpoint
        says so and exits 0 without spawning a pool."""
        done = _run_cli(
            [
                "chaos",
                "--runs",
                "1",
                "--transactions",
                "2",
                "--clients",
                "2",
                "--protocols",
                "cc",
                "--checkpoint-out",
                str(tmp_path / "ck.json"),
            ],
            cwd=str(tmp_path),
        )
        assert done.returncode == 0, done.stderr
        resumed = _run_cli(
            ["resume", str(tmp_path / "ck.json")], cwd=str(tmp_path)
        )
        assert resumed.returncode == 0, resumed.stderr
        assert "nothing to resume" in resumed.stdout
