"""Unit tests for the analysis layer: stats, tables, experiments."""

import pytest

from repro.analysis.hierarchy import (
    CONTAINMENTS,
    run_hierarchy_experiment,
    total_violations,
)
from repro.analysis.scaling import checker_scaling, depth_scaling
from repro.analysis.stats import (
    mean,
    proportion_summary,
    std_error,
    variance,
    wilson_interval,
)
from repro.analysis.tables import banner, format_table
from repro.analysis.theorems import (
    theorem1_experiment,
    theorem2_rows,
    theorem3_rows,
    theorem4_rows,
)


class TestStats:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2
        assert mean([]) == 0.0

    def test_variance(self):
        assert variance([2, 4, 4, 4, 5, 5, 7, 9]) == pytest.approx(4.571, rel=1e-3)
        assert variance([5]) == 0.0

    def test_std_error(self):
        assert std_error([1, 1, 1, 1]) == 0.0
        assert std_error([7]) == 0.0

    def test_wilson_bounds(self):
        lo, hi = wilson_interval(0, 10)
        assert lo == 0.0 and hi < 0.35
        lo, hi = wilson_interval(10, 10)
        assert lo > 0.65 and hi == 1.0
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_wilson_is_an_interval(self):
        for s, n in [(3, 10), (5, 7), (1, 100)]:
            lo, hi = wilson_interval(s, n)
            assert 0 <= lo <= s / n <= hi <= 1

    def test_proportion_summary(self):
        assert proportion_summary(0, 0) == "n/a"
        assert proportion_summary(5, 10).startswith("0.50 [")


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["a", "long_header"], [[1, 2], ["xx", "yyyy"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_banner(self):
        assert "P1" in banner("P1")


class TestHierarchyExperiment:
    def test_no_containment_violations(self):
        rows = run_hierarchy_experiment(trials=10, conflict_rates=(0.1, 0.4))
        assert total_violations(rows) == 0

    def test_rates_bounded(self):
        rows = run_hierarchy_experiment(trials=8, conflict_rates=(0.2,))
        for row in rows:
            for name in row.accepted:
                assert 0.0 <= row.rate(name) <= 1.0

    def test_containment_list_is_sane(self):
        narrows = {n for n, _w in CONTAINMENTS}
        assert "opsr" in narrows and "scc" in narrows


class TestTheoremExperiments:
    def test_theorem2_agreement_is_total(self):
        for row in theorem2_rows(depths=(2,), trials=20):
            assert row.disagreements == 0
            assert row.trials > 0

    def test_theorem3_agreement_is_total(self):
        for row in theorem3_rows(branch_counts=(2,), trials=20):
            assert row.disagreements == 0

    def test_theorem4_agreement_is_total(self):
        for row in theorem4_rows(client_counts=(2,), trials=20):
            assert row.disagreements == 0

    def test_theorem1_constructive(self):
        for row in theorem1_experiment(trials=12):
            assert row.all_valid, row


class TestScaling:
    def test_checker_scaling_points(self):
        points = checker_scaling(root_counts=(2, 4), repeats=1)
        assert len(points) == 2
        assert points[0].operations < points[1].operations
        assert all(p.seconds >= 0 for p in points)

    def test_depth_scaling_points(self):
        points = depth_scaling(depths=(2, 3), repeats=1)
        assert len(points) == 2
        assert points[0].operations > 0
