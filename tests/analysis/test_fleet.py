"""Tests for the fault-tolerant checking fleet: shard partitioning,
the coordinator state machine (simulated delivery schedules, duplicate
results, worker kills), real-process crash/hang/quarantine recovery
with byte-identity, and the SIGKILLed-coordinator resume contract."""

import json
import os
import signal
import subprocess
import sys
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.analysis.batch import _TaskOutcome, run_batch_report
from repro.analysis.fleet import (
    MSG_DONE,
    MSG_RESULT,
    FleetConfig,
    FleetCoordinator,
    FleetProtocolError,
    _WorkerHandle,
    ambient_fleet,
    fleet_scope,
    partition_shards,
)
from repro.analysis.supervise import (
    REASON_CRASH,
    REASON_HUNG,
    BatchSupervisor,
)
from repro.exceptions import BatchTaskError
from repro.obs import Telemetry, canonical_dumps, to_record, using

SRC = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


# ----------------------------------------------------------------------
# module-level workers (the pool/fleet must be able to pickle them)
# ----------------------------------------------------------------------
def square(task):
    return task * task


def sentinel_square(task):
    """Squares, but the first encounter of value 5 SIGKILLs its own
    worker process (the sentinel file makes the kill one-shot, so the
    reassigned shard completes)."""
    path, value = task
    if value == 5 and not os.path.exists(path):
        with open(path, "w"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    return value * value


def sentinel_stopper(task):
    """The first encounter of value 3 SIGSTOPs its own worker — the
    heartbeat thread freezes with it, so the coordinator must expire
    the lease rather than see a crash."""
    path, value = task
    if value == 3 and not os.path.exists(path):
        with open(path, "w"):
            pass
        os.kill(os.getpid(), signal.SIGSTOP)
    return value + 100


def poison_two(task):
    """Value 2 always kills its worker: that shard can never finish
    and must be quarantined after failing on distinct workers."""
    if task == 2:
        os.kill(os.getpid(), signal.SIGKILL)
    return task


# ----------------------------------------------------------------------
# partitioning
# ----------------------------------------------------------------------
class TestPartition:
    def test_contiguous_and_complete(self):
        todo = [(i, f"t{i}") for i in range(10)]
        shards = partition_shards(todo, workers=2, shard_size=3)
        assert [len(s) for s in shards] == [3, 3, 3, 1]
        assert [pair for shard in shards for pair in shard] == todo

    def test_default_size_targets_four_shards_per_worker(self):
        todo = [(i, i) for i in range(32)]
        shards = partition_shards(todo, workers=4, shard_size=0)
        assert len(shards) == 16
        assert all(len(s) == 2 for s in shards)

    def test_small_grids_still_shard(self):
        todo = [(0, "a"), (1, "b")]
        assert partition_shards(todo, workers=8, shard_size=0) == [
            [(0, "a")],
            [(1, "b")],
        ]


# ----------------------------------------------------------------------
# the coordinator state machine, no processes
# ----------------------------------------------------------------------
def _sim_coordinator(n, shard_size=2, max_shard_retries=100, **kw):
    clock = [0.0]
    coordinator = FleetCoordinator(
        square,
        [(i, i) for i in range(n)],
        FleetConfig(
            workers=2,
            shard_size=shard_size,
            max_shard_retries=max_shard_retries,
        ),
        fingerprint="fp",
        clock=lambda: clock[0],
        **kw,
    )
    return coordinator, clock


_SIM_NAMES = iter(range(1_000_000))


def _sim_worker(coordinator):
    handle = _WorkerHandle(
        name=f"sim{next(_SIM_NAMES)}", process=None, conn=None, started_s=0.0
    )
    coordinator._workers[handle.name] = handle
    return handle


class TestCoordinatorSimulated:
    def test_first_result_wins_and_duplicates_are_counted(self):
        coordinator, _ = _sim_coordinator(4, shard_size=4)
        handle = _sim_worker(coordinator)
        coordinator._assign_ready_shards()
        assert handle.shard_id == 0
        first = _TaskOutcome(0, 0, [], None)
        replay = _TaskOutcome(0, -999, [], None)
        assert coordinator.note_result(handle, 0, "fp", 0, first)
        assert not coordinator.note_result(handle, 0, "fp", 0, replay)
        assert coordinator.outcomes[0].result == 0
        assert coordinator.report.duplicates_discarded == 1

    def test_verdict_counts_fold_once_per_delivery(self):
        """Results carrying ``safety_verdicts`` (chaos runs) fold onto
        the report exactly once — duplicates never double-count."""
        from repro.analysis.protocols import ChaosRun

        coordinator, _ = _sim_coordinator(2, shard_size=2)
        handle = _sim_worker(coordinator)
        coordinator._assign_ready_shards()
        run = ChaosRun(
            commits=1, gave_up=0, throughput=1.0, abort_rate=0.0,
            availability=1.0, discarded_operations=0,
            aborts_by_reason={}, faults_injected={}, assembled=True,
            comp_c=True, safety_verdicts={"certified_safe": 1},
        )
        outcome = _TaskOutcome(0, run, [], None)
        assert coordinator.note_result(handle, 0, "fp", 0, outcome)
        assert coordinator.report.verdicts == {"certified_safe": 1}
        replay = _TaskOutcome(0, run, [], None)
        assert not coordinator.note_result(handle, 0, "fp", 0, replay)
        assert coordinator.report.verdicts == {"certified_safe": 1}
        assert "verdicts: certified_safe:1" in coordinator.report.render()
        # plain results without the attribute leave the fold untouched
        assert coordinator.note_result(
            handle, 0, "fp", 1, _TaskOutcome(1, 1, [], None)
        )
        assert coordinator.report.verdicts == {"certified_safe": 1}

    def test_stale_fingerprint_is_discarded_not_fatal(self):
        coordinator, _ = _sim_coordinator(2, shard_size=2)
        handle = _sim_worker(coordinator)
        coordinator._assign_ready_shards()
        stale = _TaskOutcome(0, 0, [], None)
        assert not coordinator.note_result(handle, 0, "OLD", 0, stale)
        assert 0 not in coordinator.outcomes

    def test_garbage_messages_raise_protocol_errors(self):
        coordinator, _ = _sim_coordinator(2, shard_size=2)
        handle = _sim_worker(coordinator)
        with pytest.raises(FleetProtocolError):
            coordinator._handle_message(handle, "not a tuple")
        with pytest.raises(FleetProtocolError):
            coordinator._handle_message(handle, ("no-such-tag", 1))
        with pytest.raises(FleetProtocolError):
            coordinator._handle_message(
                handle,
                (MSG_RESULT, 99, "fp", 0, _TaskOutcome(0, 0, [], None)),
            )

    def test_premature_done_is_ignored_until_results_arrive(self):
        coordinator, _ = _sim_coordinator(2, shard_size=2)
        handle = _sim_worker(coordinator)
        coordinator._assign_ready_shards()
        coordinator._handle_message(handle, (MSG_DONE, 0, "fp"))
        assert coordinator._shards[0].status == "leased"

    def test_shard_failing_on_distinct_workers_is_quarantined(self):
        coordinator, clock = _sim_coordinator(
            2, shard_size=2, max_shard_retries=2
        )
        for _ in range(2):
            clock[0] += 1000.0
            handle = _sim_worker(coordinator)
            coordinator._assign_ready_shards()
            assert handle.shard_id == 0
            coordinator._fail_worker(handle, REASON_CRASH, "sim kill")
        shard = coordinator._shards[0]
        assert shard.status == "quarantined"
        assert coordinator.report.shards_quarantined == 1
        assert coordinator.report.shards_reassigned == 1
        outcome = coordinator.outcomes[0]
        assert outcome.error is not None
        assert outcome.reason == REASON_CRASH
        assert "2 distinct worker(s)" in outcome.error

    def test_lease_expiry_is_attributed_hung(self):
        coordinator, clock = _sim_coordinator(2, shard_size=2)
        handle = _sim_worker(coordinator)
        coordinator._assign_ready_shards()
        clock[0] = handle.deadline + 1.0
        coordinator._expire_leases()
        assert handle.name not in coordinator._workers
        assert coordinator.report.leases_expired == 1
        timeline = coordinator.report.timeline
        assert timeline[-1].fate == REASON_HUNG

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_kill_and_duplicate_schedules_never_change_the_fold(
        self, data
    ):
        """The dedup property: whatever adversarial schedule of worker
        kills, duplicate deliveries, and backoff delays plays out, the
        delivered outcome for every task is the first (correct) one —
        so the batch fold, metrics, and telemetry cannot change."""
        n = data.draw(st.integers(2, 12), label="tasks")
        shard_size = data.draw(st.integers(1, 4), label="shard_size")
        kill_budget = data.draw(st.integers(0, 5), label="kills")
        coordinator, clock = _sim_coordinator(n, shard_size=shard_size)
        rounds = 0
        while not coordinator._finished():
            rounds += 1
            assert rounds < 1000, "simulation failed to converge"
            clock[0] += 1000.0  # leap past any reassignment backoff
            handle = _sim_worker(coordinator)
            coordinator._assign_ready_shards()
            if handle.shard_id is None:
                coordinator._workers.pop(handle.name, None)
                continue
            shard = coordinator._shards[handle.shard_id]
            remaining = shard.remaining(coordinator._delivered)
            kill_at = len(remaining)
            if kill_budget > 0 and data.draw(
                st.booleans(), label="kill this shard"
            ):
                kill_budget -= 1
                kill_at = data.draw(
                    st.integers(0, len(remaining)), label="kill offset"
                )
            delivered_all = True
            for position, (index, task) in enumerate(remaining):
                if position == kill_at:
                    coordinator._fail_worker(
                        handle, REASON_CRASH, "schedule kill"
                    )
                    delivered_all = False
                    break
                outcome = _TaskOutcome(index, task * task, [], None)
                coordinator._handle_message(
                    handle,
                    (MSG_RESULT, shard.shard_id, "fp", index, outcome),
                )
                if data.draw(st.booleans(), label="duplicate"):
                    wrong = _TaskOutcome(index, -999, [], None)
                    coordinator._handle_message(
                        handle,
                        (MSG_RESULT, shard.shard_id, "fp", index, wrong),
                    )
            if delivered_all:
                coordinator._handle_message(
                    handle, (MSG_DONE, shard.shard_id, "fp")
                )
                coordinator._workers.pop(handle.name, None)
        assert {
            index: outcome.result
            for index, outcome in coordinator.outcomes.items()
        } == {i: i * i for i in range(n)}
        assert coordinator.report.shards_completed == len(
            coordinator._shards
        )


# ----------------------------------------------------------------------
# real worker processes
# ----------------------------------------------------------------------
def _run_grid(worker, tasks, fleet=None, **config):
    telemetry = Telemetry()
    supervisor = BatchSupervisor(fail_fast=False)
    with using(telemetry):
        if fleet:
            with fleet_scope(FleetConfig(**config)):
                report = run_batch_report(
                    tasks, worker, supervisor=supervisor
                )
        else:
            report = run_batch_report(tasks, worker, supervisor=supervisor)
    canonical = canonical_dumps(
        [to_record(event) for event in telemetry.collect()]
    )
    return report, canonical


class TestFleetProcesses:
    def test_sigkilled_worker_output_is_byte_identical(self, tmp_path):
        """The headline contract: SIGKILL a worker mid-shard and the
        results and canonical telemetry match --workers 1 exactly."""
        sentinel = tmp_path / "killed-once"
        tasks = [(str(sentinel), value) for value in range(10)]

        # serial reference, sentinel pre-created so nothing dies
        sentinel.write_text("")
        reference, ref_canonical = _run_grid(sentinel_square, tasks)
        sentinel.unlink()

        report, fleet_canonical = _run_grid(
            sentinel_square,
            tasks,
            fleet=True,
            workers=2,
            heartbeat_interval=0.05,
            lease_timeout=2.0,
        )
        assert sentinel.exists(), "the kill never fired"
        assert report.results == reference.results
        assert fleet_canonical == ref_canonical
        assert report.fleet is not None
        assert report.fleet.workers_replaced >= 1
        assert any(
            entry.fate == REASON_CRASH for entry in report.fleet.timeline
        )

    def test_hung_worker_lease_expires_and_shard_reassigns(self, tmp_path):
        sentinel = tmp_path / "stopped-once"
        tasks = [(str(sentinel), value) for value in range(8)]
        report, _ = _run_grid(
            sentinel_stopper,
            tasks,
            fleet=True,
            workers=2,
            heartbeat_interval=0.05,
            lease_timeout=0.5,
        )
        assert report.results == [value + 100 for value in range(8)]
        assert report.fleet.leases_expired >= 1
        assert report.fleet.shards_reassigned >= 1
        assert any(
            entry.fate == REASON_HUNG for entry in report.fleet.timeline
        )

    def test_poisoned_shard_is_quarantined_never_dropped(self):
        with fleet_scope(
            FleetConfig(
                workers=2,
                heartbeat_interval=0.05,
                lease_timeout=2.0,
                max_shard_retries=2,
                shard_size=1,
            )
        ):
            report = run_batch_report(
                list(range(6)),
                poison_two,
                supervisor=BatchSupervisor(fail_fast=False),
            )
        assert report.results == [0, 1, None, 3, 4, 5]
        assert report.quarantine.indices() == [2]
        entry = report.quarantine.entries[0]
        assert entry.reason == REASON_CRASH
        assert "distinct worker(s)" in entry.error
        assert report.fleet.shards_quarantined == 1

    def test_fail_fast_aborts_on_quarantined_shard(self):
        with fleet_scope(
            FleetConfig(
                workers=2,
                heartbeat_interval=0.05,
                lease_timeout=2.0,
                max_shard_retries=1,
                shard_size=1,
            )
        ):
            with pytest.raises(BatchTaskError):
                run_batch_report(
                    list(range(6)),
                    poison_two,
                    supervisor=BatchSupervisor(fail_fast=True),
                )

    def test_single_task_grids_skip_the_fleet(self):
        with fleet_scope(FleetConfig(workers=4)):
            report = run_batch_report([7], square)
        assert report.results == [49]
        assert report.fleet is None

    def test_ambient_scope_restores_on_exit(self):
        assert ambient_fleet() is None
        with fleet_scope(FleetConfig(workers=2)) as config:
            assert ambient_fleet() is config
        assert ambient_fleet() is None


# ----------------------------------------------------------------------
# the CLI: kill the COORDINATOR, resume, same bytes
# ----------------------------------------------------------------------
CHAOS_ARGS = [
    "chaos",
    "--runs",
    "4",
    "--transactions",
    "8",
    "--clients",
    "4",
    "--seed",
    "0",
]
FLEET_ARGS = ["--fleet", "2", "--heartbeat-interval", "0.2"]


def _run_cli(args, cwd, timeout=240):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestFleetCLI:
    def test_sigkilled_coordinator_resumes_byte_identical(self, tmp_path):
        """Kill the whole fleet COORDINATOR mid-grid; `composite-tx
        resume` re-drives the remaining shards and the canonical
        telemetry matches a serial --workers 1 run byte for byte."""
        from repro.obs import canonical_dumps, read_records

        reference = _run_cli(
            CHAOS_ARGS + ["--telemetry-out", str(tmp_path / "ref.jsonl")],
            cwd=str(tmp_path),
        )
        assert reference.returncode == 0, reference.stderr

        ck = tmp_path / "ck.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC
        victim = subprocess.Popen(
            [sys.executable, "-m", "repro", *CHAOS_ARGS, *FLEET_ARGS]
            + [
                "--telemetry-out",
                str(tmp_path / "out.jsonl"),
                "--checkpoint-out",
                str(ck),
            ],
            cwd=str(tmp_path),
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.time() + 120
            while time.time() < deadline:
                if victim.poll() is not None:
                    break
                try:
                    document = json.loads(ck.read_text())
                    if document["sections"][0]["completed"]:
                        break
                except (OSError, json.JSONDecodeError, KeyError, IndexError):
                    pass
                time.sleep(0.005)
            killed_mid_run = victim.poll() is None
            victim.kill()
        finally:
            victim.wait(timeout=60)

        resumed = _run_cli(["resume", str(ck)], cwd=str(tmp_path))
        assert resumed.returncode == 0, resumed.stderr
        if not killed_mid_run:
            pytest.skip("grid finished before the kill landed")

        # the metrics table matches the serial reference exactly; the
        # fleet section (pids, timings) is environment, printed after
        assert resumed.stdout.startswith(
            reference.stdout.rstrip("\n").split("\nfleet:")[0].rstrip("\n")
        )
        ours = canonical_dumps(read_records(str(tmp_path / "out.jsonl")))
        theirs = canonical_dumps(read_records(str(tmp_path / "ref.jsonl")))
        assert ours == theirs

    def test_fleet_run_matches_serial_run(self, tmp_path):
        serial = _run_cli(
            [
                "chaos",
                "--runs",
                "2",
                "--transactions",
                "3",
                "--seed",
                "0",
                "--telemetry-out",
                str(tmp_path / "serial.jsonl"),
            ],
            cwd=str(tmp_path),
        )
        assert serial.returncode == 0, serial.stderr
        fleet = _run_cli(
            [
                "chaos",
                "--runs",
                "2",
                "--transactions",
                "3",
                "--seed",
                "0",
                *FLEET_ARGS,
                "--telemetry-out",
                str(tmp_path / "fleet.jsonl"),
            ],
            cwd=str(tmp_path),
        )
        assert fleet.returncode == 0, fleet.stderr
        assert fleet.stdout.startswith(serial.stdout.rstrip("\n"))
        assert "fleet: 2 worker slot(s)" in fleet.stdout

        from repro.obs import canonical_dumps, read_records

        ours = canonical_dumps(read_records(str(tmp_path / "fleet.jsonl")))
        theirs = canonical_dumps(
            read_records(str(tmp_path / "serial.jsonl"))
        )
        assert ours == theirs
