"""The ``composite-tx lint`` exit-code contract and output formats.

0 = every document clean, 1 = usage/IO problem (missing path, nothing
to lint), 2 = error findings — or any finding under ``--strict``.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main

REPO = Path(__file__).resolve().parents[2]

CLEAN_DOC = """{
  "schedules": {
    "S": {"transactions": {"T1": ["a"], "T2": ["b"]},
          "conflicts": [["a", "b"]],
          "executed": ["a", "b"]}
  }
}"""

#: warnings only: the lost-update *shape* (statically unsafe, CTX301)
#: around an execution the reduction accepts — no errors.
WARNING_DOC = """{
  "schedules": {
    "S1": {"transactions": {"T1": ["a", "b"], "T2": ["c"]},
           "conflicts": [["a", "c"], ["c", "b"]],
           "executed": ["a", "b", "c"]}
  }
}"""

ERROR_DOC = '{"schedules": {"S": {"transactions": {"T": ["x", "x"]}}}}'

#: errors via the refuter: the lost-update execution (CTX310)
REFUTED_DOC = """{
  "schedules": {
    "S1": {"transactions": {"T1": ["a", "b"], "T2": ["c"]},
           "conflicts": [["a", "c"], ["c", "b"]],
           "executed": ["a", "c", "b"]}
  }
}"""


@pytest.fixture()
def clean_file(tmp_path):
    path = tmp_path / "clean.json"
    path.write_text(CLEAN_DOC, encoding="utf-8")
    return str(path)


@pytest.fixture()
def warning_file(tmp_path):
    path = tmp_path / "warn.json"
    path.write_text(WARNING_DOC, encoding="utf-8")
    return str(path)


@pytest.fixture()
def error_file(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(ERROR_DOC, encoding="utf-8")
    return str(path)


def test_clean_file_exits_zero(clean_file, capsys):
    assert main(["lint", clean_file]) == 0
    out = capsys.readouterr().out
    assert "OK: 1 document(s), 0 error(s), 0 warning(s)" in out
    assert "statically Comp-C" in out  # the certificate is surfaced


def test_error_file_exits_two(error_file, capsys):
    assert main(["lint", error_file]) == 2
    out = capsys.readouterr().out
    assert "CTX203" in out
    assert "FAIL" in out


def test_warnings_pass_unless_strict(warning_file, capsys):
    assert main(["lint", warning_file]) == 0
    assert "CTX301" in capsys.readouterr().out
    assert main(["lint", warning_file, "--strict"]) == 2
    out = capsys.readouterr().out
    assert "[strict]" in out
    assert "FAIL" in out


def test_missing_path_is_usage_error(tmp_path, capsys):
    assert main(["lint", str(tmp_path / "nope.json")]) == 1
    assert "no such file or directory" in capsys.readouterr().err


def test_empty_directory_is_usage_error(tmp_path, capsys):
    assert main(["lint", str(tmp_path)]) == 1
    assert capsys.readouterr().err


def test_invalid_json_is_a_finding_not_a_crash(tmp_path, capsys):
    path = tmp_path / "broken.json"
    path.write_text("{not json", encoding="utf-8")
    assert main(["lint", str(path)]) == 2
    assert "CTX305" in capsys.readouterr().out


def test_directory_recursion_is_deterministic(
    tmp_path, clean_file, capsys
):
    (tmp_path / "sub").mkdir()
    (tmp_path / "sub" / "b.json").write_text(CLEAN_DOC, encoding="utf-8")
    (tmp_path / "a.json").write_text(WARNING_DOC, encoding="utf-8")
    assert main(["lint", str(tmp_path), "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    paths = [f["path"] for f in payload["files"]]
    assert paths == sorted(paths)
    assert len(paths) >= 3  # a.json, clean.json, sub/b.json


def test_json_format_matches_exit_code(warning_file, capsys):
    code = main(["lint", warning_file, "--format", "json", "--strict"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 2
    assert payload["exit_code"] == 2
    assert payload["strict"] is True
    assert payload["errors"] == 0
    assert payload["warnings"] >= 1
    assert payload["counts"] == {"CTX301": payload["warnings"]}
    [entry] = payload["files"]
    assert entry["safety"]["certified"] is False


def test_mixed_kinds_in_one_run(tmp_path, capsys):
    (tmp_path / "sys.json").write_text(CLEAN_DOC, encoding="utf-8")
    (tmp_path / "topo.json").write_text(
        json.dumps(
            {
                "levels": {"A": 2, "B": 1},
                "invokes": {"A": ["B"], "B": []},
                "root_schedules": ["A"],
            }
        ),
        encoding="utf-8",
    )
    assert main(["lint", str(tmp_path), "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    kinds = {f["path"].rsplit("/", 1)[-1]: f["kind"] for f in payload["files"]}
    assert kinds == {"sys.json": "system", "topo.json": "topology"}


def test_examples_directory_is_lint_clean_under_strict(capsys):
    """The acceptance gate CI runs: the shipped examples stay clean."""
    assert main(["lint", str(REPO / "examples"), "--strict"]) == 0
    out = capsys.readouterr().out
    assert out.startswith(("OK", str(REPO)))


# ----------------------------------------------------------------------
# verdict tier surface: --witness-out, --explain, --workers
# ----------------------------------------------------------------------


@pytest.fixture()
def refuted_file(tmp_path):
    path = tmp_path / "refuted.json"
    path.write_text(REFUTED_DOC, encoding="utf-8")
    return str(path)


def test_refuted_file_exits_two_without_strict(refuted_file, capsys):
    assert main(["lint", refuted_file]) == 2
    out = capsys.readouterr().out
    assert "CTX310" in out
    assert "statically refuted" in out
    assert "FAIL" in out


def test_witness_out_writes_a_replayable_document(
    refuted_file, tmp_path, capsys
):
    witness = tmp_path / "witness.json"
    assert (
        main(["lint", refuted_file, "--witness-out", str(witness)]) == 2
    )
    assert "witness document written" in capsys.readouterr().err
    from repro.lint import WITNESS_VERSION, replay_witness_file

    payload = json.loads(witness.read_text(encoding="utf-8"))
    assert payload["witness_version"] == WITNESS_VERSION
    assert payload["verdicts"] == {"certified_unsafe": 1}
    [outcome] = replay_witness_file(str(witness))
    assert outcome.rejected


def test_witness_out_written_even_when_clean(clean_file, tmp_path, capsys):
    witness = tmp_path / "witness.json"
    assert main(["lint", clean_file, "--witness-out", str(witness)]) == 0
    capsys.readouterr()
    payload = json.loads(witness.read_text(encoding="utf-8"))
    assert payload["refutations"] == []
    assert payload["verdicts"] == {"certified_safe": 1}


def test_explain_prints_edge_provenance(refuted_file, capsys):
    assert main(["lint", refuted_file, "--explain"]) == 2
    out = capsys.readouterr().out
    # the golden SafetyEdge.describe() chain, level-prefixed
    assert "L1 S1:conflict(a, c)" in out
    assert "L1 S1:conflict(b, c)" in out
    assert "recorded execution S1: a c b" in out


def test_workers_output_is_byte_identical(tmp_path, capsys):
    (tmp_path / "a.json").write_text(REFUTED_DOC, encoding="utf-8")
    (tmp_path / "b.json").write_text(WARNING_DOC, encoding="utf-8")
    (tmp_path / "c.json").write_text(CLEAN_DOC, encoding="utf-8")
    code = main(["lint", str(tmp_path), "--format", "json"])
    serial = capsys.readouterr().out
    assert main(
        ["lint", str(tmp_path), "--format", "json", "--workers", "2"]
    ) == code
    sharded = capsys.readouterr().out
    assert serial == sharded
    payload = json.loads(serial)
    assert payload["verdicts"] == {
        "certified_safe": 1,
        "certified_unsafe": 1,
        "unknown": 1,
    }
    # the canonical-JSON contract: one compact sorted line
    assert serial == serial.strip() + "\n"
    assert '": ' not in serial
