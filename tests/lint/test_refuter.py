"""The witness-producing refuter: sound by construction.

A CERTIFIED_UNSAFE verdict is only ever issued after the statically
constructed witness has been *replayed* through the real Def.-16
reduction engine and rejected — so a refutation can never disagree with
the full reduction (the hypothesis property at the bottom), and a
refuted ``--static-precheck`` run may skip the reduction in the
rejecting direction just as a certificate skips it in the accepting
one.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builder import SystemBuilder
from repro.core.certificates import replay_refutation
from repro.core.reduction import reduce_to_roots
from repro.lint import (
    WITNESS_VERSION,
    build_witness_document,
    lint_paths,
    prove_static_safety,
    replay_witness_file,
)
from repro.workloads.generator import WorkloadConfig, generate
from repro.workloads.topologies import stack_topology, tree_topology

UNSAFE_DOC = """{
  "schedules": {
    "S1": {"transactions": {"T1": ["a", "b"], "T2": ["c"]},
           "conflicts": [["a", "c"], ["c", "b"]],
           "executed": ["a", "c", "b"]}
  }
}"""


def _lost_update_system():
    b = SystemBuilder()
    b.schedule("S1")
    b.transaction("T1", "S1", ["a", "b"])
    b.transaction("T2", "S1", ["c"])
    b.conflict("S1", "a", "c")
    b.conflict("S1", "c", "b")
    b.executed("S1", ["a", "c", "b"])
    return b.build()


# ----------------------------------------------------------------------
# engine integration: the rejecting skip direction
# ----------------------------------------------------------------------


def test_refuted_precheck_skips_the_reduction():
    result = reduce_to_roots(_lost_update_system(), static_precheck=True)
    assert not result.succeeded
    assert result.skipped_by_refutation
    assert not result.skipped_by_precheck
    assert result.fronts == []
    assert result.static_certificate is not None
    assert result.static_certificate.refuted
    [profile] = result.profile
    assert profile.skipped
    assert profile.closure_calls == 0


def test_refuted_skip_reconstructs_the_failure():
    """The skipped result carries the witness's replay failure, so
    downstream consumers (explain, trace, narratives) see the same
    rejection a full run would produce."""
    skipped = reduce_to_roots(_lost_update_system(), static_precheck=True)
    full = reduce_to_roots(_lost_update_system())
    assert skipped.failure is not None and full.failure is not None
    assert skipped.failure.level == full.failure.level
    assert skipped.failure.stage == full.failure.stage
    narrative = skipped.narrative()
    assert "reduction skipped" in narrative
    assert "REJECTED" in narrative
    assert "statically refuted" in narrative


def test_replay_refutation_matches_full_run():
    system = _lost_update_system()
    report = prove_static_safety(system)
    assert report.refutation is not None
    replayed = replay_refutation(system, report.refutation.level)
    assert replayed.failure is not None
    assert replayed.failure.level == report.refutation.failure["level"]


# ----------------------------------------------------------------------
# witness documents: write -> replay round trip
# ----------------------------------------------------------------------


def test_witness_document_round_trips_through_replay(tmp_path):
    path = tmp_path / "unsafe.json"
    path.write_text(UNSAFE_DOC, encoding="utf-8")
    result, missing = lint_paths([str(path)])
    assert not missing
    document = build_witness_document(result)
    assert document["witness_version"] == WITNESS_VERSION
    assert document["verdicts"] == {"certified_unsafe": 1}
    [entry] = document["refutations"]
    assert entry["path"] == str(path)

    from repro.lint import write_witness_file

    witness_path = tmp_path / "witness.json"
    write_witness_file(str(witness_path), result)
    outcomes = replay_witness_file(str(witness_path))
    assert len(outcomes) == 1
    [outcome] = outcomes
    assert outcome.rejected
    assert outcome.level == 1
    assert "REJECTED" in outcome.describe()


def test_witness_document_empty_when_nothing_refuted(tmp_path):
    path = tmp_path / "clean.json"
    path.write_text(
        '{"schedules": {"S": {"transactions": {"T1": ["a"]},'
        ' "executed": ["a"]}}}',
        encoding="utf-8",
    )
    result, _ = lint_paths([str(path)])
    document = build_witness_document(result)
    assert document["refutations"] == []
    assert document["verdicts"] == {"certified_safe": 1}


# ----------------------------------------------------------------------
# the soundness property: no false refutations, ever
# ----------------------------------------------------------------------

_SPECS = [stack_topology(2), stack_topology(3), tree_topology(2, 2)]


@settings(max_examples=40, deadline=None)
@given(
    spec_index=st.integers(min_value=0, max_value=len(_SPECS) - 1),
    seed=st.integers(min_value=0, max_value=2000),
    conflicts=st.sampled_from([0.0, 0.1, 0.2, 0.3]),
)
def test_refuter_never_false_refutes(spec_index, seed, conflicts):
    """For arbitrary generated workloads: every CERTIFIED_UNSAFE is
    backed by a rejecting reduction (its witness replays to the same
    failure level band), and conversely a system whose reduction
    succeeds is never refuted."""
    system = generate(
        _SPECS[spec_index],
        WorkloadConfig(seed=seed, roots=3, conflict_probability=conflicts),
    ).system
    report = prove_static_safety(system)
    full = reduce_to_roots(system)
    if report.refuted:
        assert full.failure is not None
        witness = report.refutation
        assert witness is not None
        replayed = replay_refutation(system, witness.level)
        assert replayed.failure is not None
        assert replayed.failure.level == witness.failure["level"]
    if full.succeeded:
        assert not report.refuted
