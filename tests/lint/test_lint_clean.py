"""Property: a lint-clean document constructs without ModelError.

The raw pass mirrors every unconditional constructor check, so "no
error diagnostics" must imply that ``SystemBuilder.from_spec(...)
.build(validate=True, propagate_orders=False)`` succeeds — the linter
is allowed to be stricter than the engine (warnings), never blinder.

The strategy starts from generator-produced (valid) documents and
applies a few random mutations, so both the clean path and a wide
variety of dirty documents are exercised.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builder import SystemBuilder
from repro.exceptions import CompositeTxError
from repro.io import system_to_spec
from repro.lint import lint_document
from repro.workloads.generator import WorkloadConfig, generate
from repro.workloads.topologies import (
    fork_topology,
    stack_topology,
    tree_topology,
)

_SPECS = [stack_topology(2), fork_topology(2), tree_topology(2, 2)]


def _base_document(spec_index: int, seed: int) -> dict:
    spec = _SPECS[spec_index]
    recorded = generate(
        spec,
        WorkloadConfig(
            seed=seed, roots=2, conflict_probability=(seed % 3) * 0.15
        ),
    )
    return system_to_spec(recorded.system)


def _mutate(document: dict, rng_draw, data) -> None:
    """Apply one structural mutation chosen by hypothesis."""
    schedules = document["schedules"]
    sname = data.draw(st.sampled_from(sorted(schedules)))
    body = schedules[sname]
    txns = body.get("transactions", {})
    ops = [
        op
        for tdef in txns.values()
        for op in (tdef["ops"] if isinstance(tdef, dict) else tdef)
    ]
    kind = data.draw(
        st.sampled_from(
            [
                "self_conflict",
                "duplicate_conflict",
                "unknown_conflict",
                "unknown_input",
                "cyclic_input",
                "duplicate_op",
                "drop_from_executed",
                "bad_version",
            ]
        )
    )
    if kind == "self_conflict" and ops:
        body.setdefault("conflicts", []).append([ops[0], ops[0]])
    elif kind == "duplicate_conflict" and body.get("conflicts"):
        a, b = body["conflicts"][0]
        body["conflicts"].append([b, a])
    elif kind == "unknown_conflict" and ops:
        body.setdefault("conflicts", []).append([ops[0], "__missing__"])
    elif kind == "unknown_input":
        body.setdefault("weak_input", []).append(["__t1__", "__t2__"])
    elif kind == "cyclic_input" and len(txns) >= 2:
        t1, t2 = sorted(txns)[:2]
        body.setdefault("weak_input", []).extend([[t1, t2], [t2, t1]])
    elif kind == "duplicate_op" and txns:
        tname = sorted(txns)[0]
        tdef = txns[tname]
        if isinstance(tdef, dict):
            tdef["ops"] = list(tdef["ops"]) + list(tdef["ops"][:1])
        elif tdef:
            txns[tname] = list(tdef) + [tdef[0]]
    elif kind == "drop_from_executed" and body.get("executed"):
        body["executed"] = body["executed"][:-1]
    elif kind == "bad_version":
        document["version"] = 99


@settings(max_examples=60, deadline=None)
@given(
    spec_index=st.integers(min_value=0, max_value=len(_SPECS) - 1),
    seed=st.integers(min_value=0, max_value=500),
    mutations=st.integers(min_value=0, max_value=2),
    data=st.data(),
)
def test_lint_clean_documents_construct(spec_index, seed, mutations, data):
    document = _base_document(spec_index, seed)
    for _ in range(mutations):
        _mutate(document, None, data)
    # the document must survive JSON round-tripping (the CLI path)
    document = json.loads(json.dumps(document))
    report = lint_document(document)
    if report.collector.has_errors():
        return  # dirty documents are the linter's job, not this property's
    try:
        system = (
            SystemBuilder.from_spec(document)
            .build(validate=True, propagate_orders=False)
        )
    except CompositeTxError as err:  # pragma: no cover - the failure mode
        raise AssertionError(
            f"lint-clean document failed to construct: {err}"
        ) from err
    assert set(system.schedules) == set(document["schedules"])


@settings(max_examples=15, deadline=None)
@given(
    spec_index=st.integers(min_value=0, max_value=len(_SPECS) - 1),
    seed=st.integers(min_value=0, max_value=500),
)
def test_generator_output_is_always_lint_clean(spec_index, seed):
    """Unmutated generator documents never produce *model* error
    findings (they may still earn CTX301 warnings, or a CTX310 when the
    recorded execution genuinely is not Comp-C — the refuter replays it
    through the engine, so every CTX310 must agree with the reduction)."""
    document = _base_document(spec_index, seed)
    report = lint_document(document)
    assert all(d.code == "CTX310" for d in report.collector.errors)
    assert all(d.code == "CTX301" for d in report.collector.warnings)
    if report.collector.errors:
        from repro.core.reduction import reduce_to_roots

        system = SystemBuilder.from_spec(document).build()
        assert reduce_to_roots(system).failure is not None
