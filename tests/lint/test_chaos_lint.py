"""Lint inside the chaos grid: sharded workers stay bit-identical.

``chaos_run`` lints every assembled (committed) execution and records
the ``code -> count`` summary on its point; ``merge_chaos_runs`` folds
them in seed order, so ``--workers N`` must produce byte-identical
tables — including the lint column.
"""

from repro.analysis.batch import chaos_grid
from repro.analysis.protocols import ChaosPoint, chaos_run, merge_chaos_runs
from repro.workloads.topologies import fork_topology, stack_topology


def test_chaos_points_carry_lint_counts():
    run = chaos_run(
        stack_topology(2),
        "cc",
        seed=0,
        intensity=0.5,
        clients=2,
        transactions_per_client=3,
    )
    if run.comp_c is not None and run.lint_codes:
        assert all(
            code.startswith("CTX") and count > 0
            for code, count in run.lint_codes.items()
        )
    point = merge_chaos_runs("stack2", "cc", 0.5, [run, run])
    for code, count in run.lint_codes.items():
        assert point.lint_codes[code] == 2 * count


def test_lint_breakdown_rendering():
    empty = ChaosPoint(
        protocol="cc", topology="t", intensity=1.0, runs=0,
        commits=0, gave_up=0, throughput=0.0, abort_rate=0.0,
        availability=1.0,
    )
    assert empty.lint_breakdown() == "-"
    busy = ChaosPoint(
        protocol="cc", topology="t", intensity=1.0, runs=1,
        commits=1, gave_up=0, throughput=1.0, abort_rate=0.0,
        availability=1.0, lint_codes={"CTX301": 2, "CTX111": 1},
    )
    assert busy.lint_breakdown() == "CTX111:1 CTX301:2"  # sorted by code


def test_sharded_grid_is_bit_identical_to_serial():
    spec = fork_topology(2)
    kwargs = dict(
        intensity=0.5, clients=2, transactions_per_client=4
    )
    serial = chaos_grid(spec, ("cc",), (0, 1, 2, 3), workers=1, **kwargs)
    sharded = chaos_grid(spec, ("cc",), (0, 1, 2, 3), workers=2, **kwargs)
    assert serial == sharded  # dataclass equality covers lint_codes
    [point] = serial
    assert point.assembled_runs > 0  # the lint path actually ran
    assert point.lint_codes == sharded[0].lint_codes
