"""Lint inside the chaos grid: sharded workers stay bit-identical.

``chaos_run`` lints every assembled (committed) execution and records
the ``code -> count`` summary on its point; ``merge_chaos_runs`` folds
them in seed order, so ``--workers N`` must produce byte-identical
tables — including the lint column.
"""

from repro.analysis.batch import chaos_grid
from repro.analysis.protocols import ChaosPoint, chaos_run, merge_chaos_runs
from repro.workloads.topologies import fork_topology, stack_topology


def test_chaos_points_carry_lint_counts():
    run = chaos_run(
        stack_topology(2),
        "cc",
        seed=0,
        intensity=0.5,
        clients=2,
        transactions_per_client=3,
    )
    if run.comp_c is not None and run.lint_codes:
        assert all(
            code.startswith("CTX") and count > 0
            for code, count in run.lint_codes.items()
        )
    point = merge_chaos_runs("stack2", "cc", 0.5, [run, run])
    for code, count in run.lint_codes.items():
        assert point.lint_codes[code] == 2 * count
    if run.assembled:
        # exactly one verdict per assembled run, folded like lint codes
        assert sum(run.safety_verdicts.values()) == 1
        for verdict, count in run.safety_verdicts.items():
            assert point.safety_verdicts[verdict] == 2 * count


def test_lint_breakdown_rendering():
    empty = ChaosPoint(
        protocol="cc", topology="t", intensity=1.0, runs=0,
        commits=0, gave_up=0, throughput=0.0, abort_rate=0.0,
        availability=1.0,
    )
    assert empty.lint_breakdown() == "-"
    busy = ChaosPoint(
        protocol="cc", topology="t", intensity=1.0, runs=1,
        commits=1, gave_up=0, throughput=1.0, abort_rate=0.0,
        availability=1.0, lint_codes={"CTX301": 2, "CTX111": 1},
    )
    assert busy.lint_breakdown() == "CTX111:1 CTX301:2"  # sorted by code
    assert busy.verdict_breakdown() == "-"
    verdicts = ChaosPoint(
        protocol="cc", topology="t", intensity=1.0, runs=3,
        commits=3, gave_up=0, throughput=1.0, abort_rate=0.0,
        availability=1.0,
        safety_verdicts={
            "unknown": 1, "certified_safe": 1, "certified_unsafe": 1
        },
    )
    assert verdicts.verdict_breakdown() == "safe:1 unsafe:1 unknown:1"


def test_sharded_grid_is_bit_identical_to_serial():
    spec = fork_topology(2)
    kwargs = dict(
        intensity=0.5, clients=2, transactions_per_client=4
    )
    serial = chaos_grid(spec, ("cc",), (0, 1, 2, 3), workers=1, **kwargs)
    sharded = chaos_grid(spec, ("cc",), (0, 1, 2, 3), workers=2, **kwargs)
    assert serial == sharded  # dataclass equality covers lint_codes
    [point] = serial
    assert point.assembled_runs > 0  # the lint path actually ran
    assert point.lint_codes == sharded[0].lint_codes
    # the verdict fold is part of the bit-identity contract too
    assert point.safety_verdicts == sharded[0].safety_verdicts
    assert sum(point.safety_verdicts.values()) == point.assembled_runs


def test_static_precheck_grid_matches_plain_grid():
    """``chaos --static-precheck`` must not change a single verdict:
    the two-sided skip agrees with the full reduction on every cell."""
    spec = stack_topology(2)
    kwargs = dict(intensity=0.5, clients=2, transactions_per_client=4)
    plain = chaos_grid(spec, ("cc", "to"), (0, 1), workers=1, **kwargs)
    prechecked = chaos_grid(
        spec, ("cc", "to"), (0, 1), workers=1,
        static_precheck=True, **kwargs
    )
    assert plain == prechecked
