"""``--static-precheck``: skip semantics, trace round-trip, CLI wiring.

A certified system's reduction is skipped entirely — no fronts, one
``skipped`` profile row, the certificate attached as evidence — while a
declined system falls back to the full reduction with an identical
verdict.
"""

from pathlib import Path

import pytest

from repro.cli import main
from repro.core.builder import SystemBuilder
from repro.core.correctness import (
    check_composite_correctness,
    is_composite_correct,
)
from repro.core.reduction import reduce_to_roots
from repro.exceptions import ReductionError
from repro.io import load, loads_trace, dumps_trace
from repro.simulator.metrics import Metrics

EXAMPLE = (
    Path(__file__).resolve().parents[2]
    / "examples"
    / "lint"
    / "booking_system.json"
)


@pytest.fixture()
def certified_system():
    return load(EXAMPLE).system


def _lost_update_system():
    b = SystemBuilder()
    b.schedule("S1")
    b.transaction("T1", "S1", ["a", "b"])
    b.transaction("T2", "S1", ["c"])
    b.conflict("S1", "a", "c")
    b.conflict("S1", "c", "b")
    b.executed("S1", ["a", "c", "b"])
    return b.build()


def test_certified_run_skips_the_reduction(certified_system):
    result = reduce_to_roots(certified_system, static_precheck=True)
    assert result.succeeded
    assert result.skipped_by_precheck
    assert result.fronts == []
    assert result.static_certificate is not None
    assert result.static_certificate.certified
    [profile] = result.profile
    assert profile.skipped
    assert profile.closure_calls == 0
    assert "reduction skipped" in result.narrative()
    assert "ACCEPTED" in result.narrative()


def test_skipped_run_has_no_serial_order(certified_system):
    result = reduce_to_roots(certified_system, static_precheck=True)
    with pytest.raises(ReductionError, match="static precheck"):
        result.serial_order()


def test_correctness_report_carries_no_witness_when_skipped(
    certified_system,
):
    report = check_composite_correctness(
        certified_system, static_precheck=True
    )
    assert report.correct
    assert report.serial_witness is None
    assert report.reduction.skipped_by_precheck
    # without the precheck the same system yields a real witness
    full = check_composite_correctness(certified_system)
    assert full.correct
    assert full.serial_witness


def _unresolved_cycle_system():
    """The lost-update *shape* around an accepted execution: the
    multigraph has an orientable cycle but the recorded orientations
    close no directed cycle — neither certified nor refuted, so the
    precheck must fall back to the full reduction."""
    b = SystemBuilder()
    b.schedule("S1")
    b.transaction("T1", "S1", ["a", "b"])
    b.transaction("T2", "S1", ["c"])
    b.conflict("S1", "a", "c")
    b.conflict("S1", "c", "b")
    b.executed("S1", ["a", "b", "c"])
    return b.build()


def test_unknown_system_falls_back_to_full_reduction():
    system = _unresolved_cycle_system()
    result = reduce_to_roots(system, static_precheck=True)
    assert not result.skipped_by_precheck
    assert not result.skipped_by_refutation
    assert result.static_certificate is not None
    assert not result.static_certificate.certified
    assert not result.static_certificate.refuted
    assert result.succeeded == reduce_to_roots(system).succeeded
    assert is_composite_correct(system, static_precheck=True) == (
        is_composite_correct(system)
    )


def test_refuted_system_skips_in_the_rejecting_direction():
    system = _lost_update_system()
    result = reduce_to_roots(system, static_precheck=True)
    assert not result.succeeded
    assert result.skipped_by_refutation
    assert not result.skipped_by_precheck
    assert result.static_certificate is not None
    assert result.static_certificate.refuted
    assert result.succeeded == reduce_to_roots(system).succeeded
    assert is_composite_correct(system, static_precheck=True) == (
        is_composite_correct(system)
    )


def test_trace_round_trip_preserves_skip(certified_system):
    result = reduce_to_roots(certified_system, static_precheck=True)
    trace = loads_trace(dumps_trace(result))
    assert trace.succeeded
    assert trace.fronts == []
    assert trace.serial_witness is None
    [profile] = trace.profile
    assert profile.skipped
    assert trace.static_certificate is not None
    assert trace.static_certificate["certified"] is True
    assert trace.static_certificate["witnesses"]


def test_refuted_trace_round_trip_preserves_skip():
    result = reduce_to_roots(_lost_update_system(), static_precheck=True)
    trace = loads_trace(dumps_trace(result))
    assert not trace.succeeded
    assert trace.fronts == []
    [profile] = trace.profile
    assert profile.skipped
    assert trace.static_certificate is not None
    assert trace.static_certificate["verdict"] == "certified_unsafe"
    assert trace.static_certificate["refutation"]["level"] == 1


def test_unskipped_trace_has_no_certificate(certified_system):
    result = reduce_to_roots(certified_system)
    trace = loads_trace(dumps_trace(result))
    assert trace.static_certificate is None
    assert all(not p.skipped for p in trace.profile)


def test_metrics_counts_precheck_skips():
    metrics = Metrics()
    assert metrics.summary()["static_precheck_skips"] == 0
    metrics.static_precheck_skips += 3
    assert metrics.summary()["static_precheck_skips"] == 3


def test_metrics_counts_refute_skips():
    metrics = Metrics()
    assert metrics.summary()["static_refute_skips"] == 0
    metrics.static_refute_skips += 2
    assert metrics.summary()["static_refute_skips"] == 2


def test_cli_check_static_precheck(capsys):
    assert main(["check", str(EXAMPLE), "--static-precheck", "--profile"]) == 0
    out = capsys.readouterr().out
    assert "ACCEPTED" in out
    assert "skipped" in out


def test_cli_check_verdict_unchanged_by_precheck(capsys, tmp_path):
    from repro.figures import figure3_system
    from repro.io import save

    path = tmp_path / "fig3.json"
    save(figure3_system(), path)
    plain = main(["check", str(path)])
    prechecked = main(["check", str(path), "--static-precheck"])
    capsys.readouterr()
    assert plain == prechecked
