"""Golden lint tests: every registered CTX code has a minimal trigger.

``test_every_code_has_a_trigger`` walks the whole ``CODES`` registry,
so registering a new code without a golden fixture here fails the
suite — the stable-vocabulary contract of the lint subsystem.

Axioms 2a and 3 (CTX104/CTX106) are unreachable through the document
path — the builder folds intra-transaction orders and the axiom-3
expansion into the output orders — so the axiom fixtures construct
:class:`Schedule` objects directly with ``validate=False`` and drain
them through :func:`lint_schedule_axioms`.
"""

from typing import Mapping, Sequence, Set

import pytest

from repro.core.orders import Relation
from repro.core.schedule import Schedule
from repro.core.transaction import Transaction
from repro.exceptions import ScheduleAxiomError
from repro.lint import (
    AXIOM_CODES,
    CODES,
    DiagnosticCollector,
    Severity,
    lint_document,
    lint_schedule_axioms,
    lint_schedules,
)

# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------


def _axiom_codes(schedule: Schedule) -> Set[str]:
    collector = DiagnosticCollector()
    lint_schedule_axioms(collector, schedule)
    return {d.code for d in collector}


def _document_codes(document: Mapping) -> Set[str]:
    return {d.code for d in lint_document(document).diagnostics}


def _schedule_codes(schedules: Sequence[Schedule]) -> Set[str]:
    collector = DiagnosticCollector()
    lint_schedules(collector, schedules)
    return {d.code for d in collector}


def _txn(name, ops, **kw):
    return Transaction(name, ops, **kw)


# ----------------------------------------------------------------------
# axiom fixtures (API path, validate=False)
# ----------------------------------------------------------------------


def _axiom_1a_schedule() -> Schedule:
    return Schedule(
        "S",
        [_txn("T1", ["a"]), _txn("T2", ["b"])],
        conflicts=[("a", "b")],
        weak_input=[("T1", "T2")],
        validate=False,
    )


def _axiom_1b_schedule() -> Schedule:
    return Schedule(
        "S",
        [_txn("T1", ["a"]), _txn("T2", ["b"])],
        conflicts=[("a", "b")],
        weak_input=[("T2", "T1")],
        validate=False,
    )


def _axiom_1c_schedule() -> Schedule:
    return Schedule(
        "S",
        [_txn("T1", ["a"]), _txn("T2", ["b"])],
        conflicts=[("a", "b")],
        validate=False,
    )


def _axiom_2a_schedule() -> Schedule:
    return Schedule(
        "S",
        [_txn("T1", ["a", "b"], weak_order=[("a", "b")])],
        validate=False,
    )


def _axiom_2b_schedule() -> Schedule:
    return Schedule(
        "S",
        [_txn("T1", ["a", "b"], strong_order=[("a", "b")])],
        weak_output=[("a", "b")],
        validate=False,
    )


def _axiom_3_schedule() -> Schedule:
    return Schedule(
        "S",
        [_txn("T1", ["a"]), _txn("T2", ["b"])],
        strong_input=[("T1", "T2")],
        weak_output=[("a", "b")],
        validate=False,
    )


def _axiom_4_schedule() -> Schedule:
    # Axiom 4 holds by construction (the constructor folds the strong
    # output into the weak one), so simulate the refactor the re-check
    # guards against: a weak output that lost the strong pairs.
    schedule = Schedule(
        "S",
        [_txn("T1", ["a"]), _txn("T2", ["b"])],
        strong_output=[("a", "b")],
        validate=False,
    )
    schedule._weak_output = Relation(elements=("a", "b"))
    return schedule


_AXIOM_SCHEDULES = {
    "CTX101": _axiom_1a_schedule,
    "CTX102": _axiom_1b_schedule,
    "CTX103": _axiom_1c_schedule,
    "CTX104": _axiom_2a_schedule,
    "CTX105": _axiom_2b_schedule,
    "CTX106": _axiom_3_schedule,
    "CTX107": _axiom_4_schedule,
}


# ----------------------------------------------------------------------
# document fixtures
# ----------------------------------------------------------------------

_DOCUMENTS = {
    "CTX110": {
        "schedules": {
            "S": {"transactions": {"T": ["a"]}, "conflicts": [["a", "a"]]}
        }
    },
    "CTX111": {
        "schedules": {
            "S": {
                "transactions": {"T1": ["a"], "T2": ["b"]},
                "conflicts": [["a", "b"], ["b", "a"]],
                "executed": ["a", "b"],
            }
        }
    },
    "CTX112": {
        "schedules": {
            "S": {
                "transactions": {"T1": ["a"], "T2": ["b"]},
                "conflicts": [["a", "zz"]],
            }
        }
    },
    "CTX113": {
        "schedules": {
            "S": {"transactions": {"T": ["a"]}, "weak_input": [["T", "TX"]]}
        }
    },
    "CTX114": {
        "schedules": {
            "S": {
                "transactions": {"T1": ["a"], "T2": ["b"]},
                "weak_input": [["T1", "T2"], ["T2", "T1"]],
            }
        }
    },
    "CTX115": {
        "schedules": {
            "S": {
                "transactions": {"T1": ["a"], "T2": ["b"]},
                "weak_output": [["a", "b"], ["b", "a"]],
            }
        }
    },
    "CTX202": {
        "schedules": {
            "S1": {"transactions": {"T": ["a"]}},
            "S2": {"transactions": {"T": ["b"]}},
        }
    },
    "CTX203": {"schedules": {"S": {"transactions": {"T": ["a", "a"]}}}},
    "CTX204": {
        "schedules": {
            "S1": {"transactions": {"T1": ["T2"]}},
            "S2": {"transactions": {"T2": ["T1"]}},
        }
    },
    "CTX205": {
        "schedules": {"S": {"transactions": {"T1": ["T2"], "T2": ["z"]}}}
    },
    "CTX206": {
        "schedules": {
            "S1": {"transactions": {"T1": ["T2"], "T4": ["q"]}},
            "S2": {"transactions": {"T2": ["T4"]}},
        }
    },
    "CTX207": {
        "schedules": {
            "S1": {
                "transactions": {"A": ["f", "h"]},
                "weak_output": [["f", "h"]],
            },
            "S0": {"transactions": {"f": ["x"], "h": ["y"]}},
        }
    },
    "CTX208": {
        "schedules": {
            "S1": {
                "transactions": {"A": ["f", "h"]},
                "strong_output": [["f", "h"]],
            },
            "S0": {
                "transactions": {"f": ["x"], "h": ["y"]},
                "weak_input": [["f", "h"]],
            },
        }
    },
    "CTX220": {
        "levels": {"A": 1, "B": 2},
        "invokes": {"A": ["B"]},
        "root_schedules": ["B"],
    },
    "CTX221": {
        "levels": {"A": 2},
        "invokes": {"A": ["B"]},
        "root_schedules": ["A"],
    },
    "CTX222": {"levels": {"A": 1}, "invokes": {"A": []},
               "root_schedules": []},
    # executed a,b,c: both conflict pairs record the same direction
    # (T1 before T2), so the refuter finds no directed cycle and the
    # multigraph cycle stays a CTX301 warning
    "CTX301": {
        "schedules": {
            "S1": {
                "transactions": {"T1": ["a", "b"], "T2": ["c"]},
                "conflicts": [["a", "c"], ["c", "b"]],
                "executed": ["a", "b", "c"],
            }
        }
    },
    "CTX302": {
        "schedules": {
            "S": {"transactions": {"T": ["a", "b"]}, "executed": ["a"]}
        }
    },
    "CTX303": {
        "version": 99,
        "schedules": {"S": {"transactions": {"T": ["a"]}}},
    },
    "CTX304": {"version": 1, "succeeded": True, "failure": {"level": 0}},
    "CTX305": {},
    # any cycle-free system: the prover declines under seed_leaf_order
    # (the trigger runs lint_document with those options, see _trigger)
    "CTX306": {
        "schedules": {"S": {"transactions": {"T1": ["a"], "T2": ["b"]}}}
    },
    # the lost-update shape executed a,c,b: the recorded orientations
    # close a directed cycle and the replay rejects -> CERTIFIED_UNSAFE
    "CTX310": {
        "schedules": {
            "S1": {
                "transactions": {"T1": ["a", "b"], "T2": ["c"]},
                "conflicts": [["a", "c"], ["c", "b"]],
                "executed": ["a", "c", "b"],
            }
        }
    },
}

# CTX4xx codes are raised by the hardened repro.io document loaders
# (ParseError.diagnostic), not through lint_document: the trigger is
# raw text, not a parsed mapping.
_RAW_TEXTS = {
    "CTX401": '{"schedules": }',
    "CTX402": '{"schedules": {"S": ',
    "CTX403": "[1, 2, 3]",
}


# CTX5xx codes are raised by the streaming recovery layer
# (SnapshotError / EventLogTruncatedError / PoisonEvent diagnostics),
# not through lint_document: each trigger provokes the real error path
# in a scratch directory.
_HEADER_LINE = b'{"e": "log", "v": 1, "derive": "declared"}\n'


def _ctx501_codes() -> Set[str]:
    import tempfile
    from pathlib import Path

    from repro.exceptions import SnapshotError
    from repro.stream.snapshot import verify_snapshot

    with tempfile.TemporaryDirectory() as tmp:
        log = Path(tmp) / "log.jsonl"
        log.write_bytes(_HEADER_LINE)
        document = {
            "log": {"offset": 10, "line": 1, "digest": "not-the-prefix"}
        }
        try:
            verify_snapshot(document, log)
        except SnapshotError as err:
            assert err.diagnostic is not None
            return {err.diagnostic.code}
    return set()


def _ctx502_codes() -> Set[str]:
    import tempfile
    from pathlib import Path

    from repro.exceptions import EventLogTruncatedError
    from repro.stream.tail import EventLogTail

    with tempfile.TemporaryDirectory() as tmp:
        log = Path(tmp) / "log.jsonl"
        log.write_bytes(_HEADER_LINE)
        tail = EventLogTail(str(log))
        tail.poll()
        log.write_bytes(b"")
        try:
            tail.poll()
        except EventLogTruncatedError as err:
            assert err.diagnostic is not None
            return {err.diagnostic.code}
    return set()


def _ctx503_codes() -> Set[str]:
    import tempfile
    from pathlib import Path

    from repro.exceptions import SnapshotError
    from repro.stream.snapshot import read_snapshot

    with tempfile.TemporaryDirectory() as tmp:
        snap = Path(tmp) / "snap.json"
        snap.write_text('{"v": 1, "log"', encoding="utf-8")
        try:
            read_snapshot(str(snap))
        except SnapshotError as err:
            assert err.diagnostic is not None
            return {err.diagnostic.code}
    return set()


def _ctx504_codes() -> Set[str]:
    import tempfile
    from pathlib import Path

    from repro.stream.supervisor import StreamSupervisor

    with tempfile.TemporaryDirectory() as tmp:
        log = Path(tmp) / "log.jsonl"
        log.write_bytes(_HEADER_LINE + b"this line is not an event\n")
        supervisor = StreamSupervisor(
            str(log),
            follow=False,
            quarantine_after=1,
            backoff_base=0.0,
            sleep=lambda _s: None,
        )
        watch = supervisor.run()
        assert watch.poison is not None
        return {watch.poison.diagnostic.code}


_STREAM_TRIGGERS = {
    "CTX501": _ctx501_codes,
    "CTX502": _ctx502_codes,
    "CTX503": _ctx503_codes,
    "CTX504": _ctx504_codes,
}


def _raw_text_codes(text: str) -> Set[str]:
    from repro.exceptions import ParseError
    from repro.io.jsondoc import parse_json_document

    try:
        parse_json_document(text, source="mem.json", expect_object=True)
    except ParseError as err:
        assert err.diagnostic is not None
        assert err.offset is not None
        return {err.diagnostic.code}
    return set()


def _trigger(code: str) -> Set[str]:
    if code in _AXIOM_SCHEDULES:
        return _axiom_codes(_AXIOM_SCHEDULES[code]())
    if code == "CTX201":
        return _schedule_codes(
            [
                Schedule("S", [_txn("T", ["a"])]),
                Schedule("S", [_txn("U", ["b"])]),
            ]
        )
    if code in _RAW_TEXTS:
        return _raw_text_codes(_RAW_TEXTS[code])
    if code in _STREAM_TRIGGERS:
        return _STREAM_TRIGGERS[code]()
    if code == "CTX306":
        from repro.core.observed import ObservedOrderOptions

        report = lint_document(
            _DOCUMENTS[code],
            options=ObservedOrderOptions(seed_leaf_order=True),
        )
        return {d.code for d in report.diagnostics}
    return _document_codes(_DOCUMENTS[code])


# ----------------------------------------------------------------------
# the completeness contract
# ----------------------------------------------------------------------


@pytest.mark.parametrize("code", sorted(CODES))
def test_every_code_has_a_trigger(code):
    assert (
        code in _AXIOM_SCHEDULES
        or code == "CTX201"
        or code in _DOCUMENTS
        or code in _RAW_TEXTS
        or code in _STREAM_TRIGGERS
    ), f"no golden fixture for {code}; add one when registering codes"
    assert code in _trigger(code)


def test_registry_severities():
    warnings = {code for code, (sev, _) in CODES.items()
                if sev is Severity.WARNING}
    notes = {code for code, (sev, _) in CODES.items()
             if sev is Severity.NOTE}
    assert warnings == {"CTX111", "CTX301"}
    assert notes == {"CTX306"}
    assert all(
        CODES[code][0] is Severity.ERROR
        for code in CODES
        if code not in warnings | notes
    )


def test_axiom_code_map_is_total():
    assert sorted(AXIOM_CODES.values()) == [f"CTX10{i}" for i in range(1, 8)]


# ----------------------------------------------------------------------
# shared-generator contract: engine and linter cannot disagree
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "code", sorted(set(_AXIOM_SCHEDULES) - {"CTX107"})
)
def test_engine_raises_what_lint_reports(code):
    schedule = _AXIOM_SCHEDULES[code]()
    with pytest.raises(ScheduleAxiomError) as err:
        schedule.validate_axioms()
    assert code in _axiom_codes(schedule)
    # the first lint finding is the exception the engine raises
    collector = DiagnosticCollector()
    lint_schedule_axioms(collector, schedule)
    assert collector.diagnostics[0].code == AXIOM_CODES[err.value.axiom]


def test_axiom_payload_becomes_location():
    collector = DiagnosticCollector(file="mem.json")
    lint_schedule_axioms(collector, _axiom_1a_schedule())
    [diagnostic] = collector.diagnostics
    assert diagnostic.code == "CTX101"
    assert diagnostic.severity is Severity.ERROR
    assert diagnostic.location.file == "mem.json"
    assert diagnostic.location.schedule == "S"
    assert diagnostic.location.nodes == ("a", "b", "T1", "T2")
    assert diagnostic.fix_hint
    rendered = diagnostic.render()
    assert rendered.startswith("CTX101 error:")
    assert "schedule S" in rendered


# ----------------------------------------------------------------------
# collector behaviour
# ----------------------------------------------------------------------


def test_unregistered_code_is_rejected():
    with pytest.raises(KeyError):
        DiagnosticCollector().report("CTX999", "nope")


def test_counts_are_sorted_and_complete():
    collector = DiagnosticCollector()
    collector.report("CTX305", "one")
    collector.report("CTX110", "two")
    collector.report("CTX305", "three")
    assert list(collector.counts().items()) == [("CTX110", 1), ("CTX305", 2)]


def test_diagnostic_to_dict_shape():
    collector = DiagnosticCollector(file="f.json")
    diagnostic = collector.report(
        "CTX110", "msg", schedule="S", nodes=("a",), fix_hint="drop it"
    )
    assert diagnostic.to_dict() == {
        "code": "CTX110",
        "severity": "error",
        "location": {"file": "f.json", "schedule": "S", "nodes": ["a"]},
        "message": "msg",
        "fix_hint": "drop it",
    }


def test_all_conflict_defects_reported_in_one_pass():
    """The `_normalize_conflicts` satellite: every self-conflict and
    every duplicate surfaces in a single lint run."""
    codes = lint_document(
        {
            "schedules": {
                "S": {
                    "transactions": {"T1": ["a"], "T2": ["b"]},
                    "conflicts": [
                        ["a", "a"],
                        ["b", "b"],
                        ["a", "b"],
                        ["b", "a"],
                    ],
                }
            }
        }
    )
    counts = codes.collector.counts()
    assert counts["CTX110"] == 2
    assert counts["CTX111"] == 1
