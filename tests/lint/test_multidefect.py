"""One lint run over a many-defect document reports *every* defect.

The fail-fast engine would stop at the first ModelError; the lint
acceptance criterion is that a single ``composite-tx lint`` invocation
surfaces all of them, in text and in ``--format json``.
"""

import json
from pathlib import Path

from repro.cli import main
from repro.lint import lint_file

FIXTURE = str(Path(__file__).parent / "fixtures" / "multi_defect.json")

#: every code seeded into the fixture (see the file's defects:
#: version 99, duplicate op, unknown intra-order member, self-conflict,
#: duplicate conflict, unknown conflict op, cyclic weak input, cyclic
#: weak output, transaction in two schedules, execution mismatch).
SEEDED = {
    "CTX110",
    "CTX111",
    "CTX112",
    "CTX113",
    "CTX114",
    "CTX115",
    "CTX202",
    "CTX203",
    "CTX302",
    "CTX303",
}


def test_single_run_reports_every_seeded_defect():
    report = lint_file(FIXTURE)
    assert report.kind == "system"
    assert set(report.collector.counts()) == SEEDED
    assert report.collector.has_errors()
    # the fixture path is stamped on every finding
    assert all(d.location.file == FIXTURE for d in report.diagnostics)


def test_cli_text_lists_every_code(capsys):
    assert main(["lint", FIXTURE]) == 2
    out = capsys.readouterr().out
    for code in sorted(SEEDED):
        assert code in out
    assert "FAIL" in out


def test_cli_json_is_valid_and_complete(capsys):
    assert main(["lint", FIXTURE, "--format", "json"]) == 2
    payload = json.loads(capsys.readouterr().out)
    assert payload["exit_code"] == 2
    assert payload["strict"] is False
    assert payload["errors"] > 0
    assert set(payload["counts"]) == SEEDED
    [entry] = payload["files"]
    assert entry["path"] == FIXTURE
    assert entry["kind"] == "system"
    assert entry["safety"] is None  # errors block the safety pass
    seen = {d["code"] for d in entry["diagnostics"]}
    assert seen == SEEDED
    for diagnostic in entry["diagnostics"]:
        assert diagnostic["severity"] in ("error", "warning")
        assert diagnostic["message"]
        assert diagnostic["location"]["file"] == FIXTURE
