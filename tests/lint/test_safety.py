"""The static safety prover: soundness on 500 generated systems plus
unit tests for the witnesses, the decline path, and the topology pass.

The property at the bottom is the acceptance criterion of the pass:
``--static-precheck`` must agree with the full reduction verdict on
every generated system (both the incremental and the from-scratch
engine), and a certified system's reduction must actually succeed.
"""

from pathlib import Path

import pytest

from repro.core.builder import SystemBuilder
from repro.core.observed import ObservedOrderOptions
from repro.core.reduction import reduce_to_roots
from repro.io import load
from repro.lint import (
    DiagnosticCollector,
    analyze_system_safety,
    analyze_topology_safety,
    prove_static_safety,
)
from repro.workloads.generator import WorkloadConfig, generate
from repro.workloads.topologies import (
    TopologySpec,
    fork_topology,
    join_topology,
    stack_topology,
    tree_topology,
)

EXAMPLES = Path(__file__).resolve().parents[2] / "examples" / "lint"


def _lost_update_system(executed=("a", "c", "b")):
    b = SystemBuilder()
    b.schedule("S1")
    b.transaction("T1", "S1", ["a", "b"])
    b.transaction("T2", "S1", ["c"])
    b.conflict("S1", "a", "c")
    b.conflict("S1", "c", "b")
    b.executed("S1", list(executed))
    return b.build()


# ----------------------------------------------------------------------
# unit tests
# ----------------------------------------------------------------------


def test_lost_update_shape_is_refuted():
    """Executed a,c,b the recorded orientations close a directed cycle
    and the replay rejects: CERTIFIED_UNSAFE with a witness."""
    report = prove_static_safety(_lost_update_system())
    assert report.refuted
    assert not report.certified
    assert "statically refuted" in report.summary()
    [witness] = report.cycle_witnesses
    assert witness.level == 1  # parallel T1--T2 edges
    assert not witness.forest
    assert witness.orientable is True
    assert report.refutation is not None
    assert report.refutation.level == 1
    assert {e.source for e in report.refutation.cycle_edges} == {"conflict"}
    assert report.refutation.failure["level"] == 1
    # the witness pins the recorded execution it refutes
    assert report.refutation.executions["S1"] == ("a", "c", "b")


def test_lost_update_variant_stays_unknown():
    """Executed a,b,c both conflict pairs record the same direction:
    no directed cycle under the recorded orientations, so the
    multigraph cycle stays an unresolved warning."""
    report = prove_static_safety(_lost_update_system(("a", "b", "c")))
    assert not report.certified and not report.refuted
    assert "potential conflict cycle" in report.summary()
    assert report.refutation is None
    # and the reduction indeed accepts this execution
    assert reduce_to_roots(_lost_update_system(("a", "b", "c"))).succeeded


def test_refuted_system_becomes_ctx310_error():
    collector = DiagnosticCollector()
    analyze_system_safety(collector, _lost_update_system())
    [error] = collector.errors
    assert error.code == "CTX310"
    assert "T1" in error.message and "T2" in error.message
    assert "replay" in error.message
    assert not collector.warnings  # the refuted level is not re-warned


def test_cycle_witness_becomes_ctx301_warning():
    collector = DiagnosticCollector()
    analyze_system_safety(collector, _lost_update_system(("a", "b", "c")))
    assert not collector.has_errors()
    [warning] = collector.warnings
    assert warning.code == "CTX301"
    # the warning names the component cycle and the item pairs behind it
    assert "T1" in warning.message and "T2" in warning.message
    assert "conflict" in warning.message


def test_certified_example_reduces_successfully():
    recorded = load(EXAMPLES / "booking_system.json")
    report = prove_static_safety(recorded.system)
    assert report.certified
    assert report.reason is None
    assert "statically Comp-C" in report.summary()
    assert all(w.forest for w in report.witnesses)
    assert len(report.witnesses) == recorded.system.order + 1
    assert reduce_to_roots(recorded.system).succeeded


def test_report_round_trips_to_dict():
    report = prove_static_safety(_lost_update_system())
    payload = report.to_dict()
    assert payload["certified"] is False
    assert payload["verdict"] == "certified_unsafe"
    assert payload["declined"] is False
    levels = [w["level"] for w in payload["witnesses"]]
    assert levels == sorted(levels)
    cycle = next(w for w in payload["witnesses"] if not w["forest"])
    assert cycle["cycle_nodes"]
    for edge in cycle["cycle_edges"]:
        assert edge["source"] in ("conflict", "input")
        assert len(edge["pair"]) == 2
        assert edge["level"] == cycle["level"]
    refutation = payload["refutation"]
    assert refutation["level"] == 1
    assert refutation["executions"]["S1"] == ["a", "c", "b"]
    assert refutation["failure"]["description"]


def test_safety_edge_describe_is_self_locating():
    """Golden output: every edge names its level, so --explain chains
    read without cross-referencing the surrounding report."""
    report = prove_static_safety(_lost_update_system())
    [witness] = report.cycle_witnesses
    rendered = sorted(e.describe() for e in witness.cycle_edges)
    assert rendered == [
        "L1 S1:conflict(a, c)",
        "L1 S1:conflict(b, c)",
    ]


def test_prover_declines_seed_leaf_order():
    recorded = load(EXAMPLES / "booking_system.json")
    options = ObservedOrderOptions(seed_leaf_order=True)
    report = prove_static_safety(recorded.system, options)
    assert not report.certified
    assert report.declined
    assert "seed_leaf_order" in report.reason
    # the decline is visible as exactly one CTX306 note -- never as an
    # error or warning (notes do not affect exit codes)
    collector = DiagnosticCollector()
    analyze_system_safety(collector, recorded.system, options)
    assert len(collector) == 1
    [note] = collector.notes
    assert note.code == "CTX306"
    assert "seed_leaf_order" in note.message
    assert not collector.errors and not collector.warnings


def test_topology_diamond_warns_tree_does_not():
    diamond = TopologySpec(
        name="diamond",
        levels={"F": 3, "B1": 2, "B2": 2, "J": 1},
        invokes={"F": ["B1", "B2"], "B1": ["J"], "B2": ["J"], "J": []},
        root_schedules=["F"],
    )
    collector = DiagnosticCollector()
    assert not analyze_topology_safety(collector, diamond)
    [warning] = collector.warnings
    assert warning.code == "CTX301"

    collector = DiagnosticCollector()
    assert analyze_topology_safety(collector, stack_topology(3))
    assert len(collector) == 0


# ----------------------------------------------------------------------
# the 500-system agreement property
# ----------------------------------------------------------------------

_SPECS = [
    stack_topology(2),
    stack_topology(3),
    fork_topology(3),
    join_topology(2),
    tree_topology(2, 2),
]


@pytest.mark.parametrize("spec", _SPECS, ids=lambda s: s.name)
def test_precheck_agrees_with_reduction_on_generated_systems(spec):
    """100 seeds per topology (500 systems over the suite): the
    precheck verdict equals the full verdict under both engines — in
    *both* skip directions — every certificate is backed by a
    successful reduction, every refutation by a rejected one, and the
    certified population is non-empty (the property is not vacuous)."""
    certified = 0
    refuted = 0
    for seed in range(100):
        config = WorkloadConfig(
            seed=seed,
            roots=3,
            conflict_probability=(seed % 4) * 0.1,
            intra_order_probability=0.2 if seed % 5 == 0 else 0.0,
        )
        system = generate(spec, config).system
        report = prove_static_safety(system)
        prechecked = reduce_to_roots(system, static_precheck=True)
        scratch = reduce_to_roots(system, incremental=False)
        assert prechecked.succeeded == scratch.succeeded, (spec.name, seed)
        if report.certified:
            certified += 1
            assert prechecked.succeeded
            assert prechecked.skipped_by_precheck
            assert reduce_to_roots(system).succeeded  # incremental, no skip
        elif report.refuted:
            refuted += 1
            assert not prechecked.succeeded
            assert prechecked.skipped_by_refutation
            assert not prechecked.skipped_by_precheck
            assert scratch.failure is not None
        else:
            assert not prechecked.skipped_by_precheck
            assert not prechecked.skipped_by_refutation
    assert certified > 0, f"no {spec.name} workload was ever certified"
    assert refuted > 0, f"no {spec.name} workload was ever refuted"
