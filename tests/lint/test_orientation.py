"""Tier-2 orientation analysis: the mixed-multigraph certifier.

Unit tests for the pure graph routines in ``repro.lint.orientation``
plus the acceptance property of the tier: on a generated corpus the
orientation certifier proves strictly more systems Comp-C than the
level-forest test alone (the forced input diamond is the canonical
shape — an undirected cycle that can never orient into a directed
one).
"""

import random

from repro.core.builder import SystemBuilder
from repro.core.reduction import reduce_to_roots
from repro.lint import prove_static_safety
from repro.lint.orientation import (
    _strongly_connected_components,
    find_directed_cycle,
    mixed_graph_unsafe_reason,
)


# ----------------------------------------------------------------------
# graph routine units
# ----------------------------------------------------------------------


def test_scc_partitions_a_two_cycle():
    component = _strongly_connected_components(
        ["a", "b", "c"], [("a", "b"), ("b", "a"), ("b", "c")]
    )
    assert component["a"] == component["b"]
    assert component["c"] != component["a"]


def test_forced_cycle_is_unsafe():
    reason = mixed_graph_unsafe_reason(
        [("a", "b"), ("b", "a")], []
    )
    assert reason is not None


def test_forced_diamond_is_safe():
    """a->b->d, a->c->d: an undirected cycle, yet no orientation of
    (zero) free edges closes a directed one — the shape tier-1's
    forest test can never certify."""
    forced = [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]
    assert mixed_graph_unsafe_reason(forced, []) is None


def test_free_cycle_is_unsafe():
    assert mixed_graph_unsafe_reason([], [("a", "b"), ("b", "c"), ("c", "a")]) is not None


def test_free_parallel_edges_are_a_cycle():
    """Two free edges between the same endpoints can orient head-on."""
    assert mixed_graph_unsafe_reason([], [("a", "b"), ("a", "b")]) is not None
    assert mixed_graph_unsafe_reason([], [("a", "b")]) is None


def test_free_tree_plus_forced_dag_is_safe():
    forced = [("a", "b"), ("b", "c")]
    free = [("a", "d"), ("b", "d")]
    # free edges a-d, b-d form no cycle on their own and no forced arc
    # sits inside an SCC of the bidirectionalized graph... except the
    # free edges bridge a-d-b, closing a mixed cycle with forced a->b:
    # orient a->d, d->b? That is a path a->d->b parallel to a->b, not
    # a cycle.  Orient d->a and b->d: b->d->a->b IS a directed cycle.
    assert mixed_graph_unsafe_reason(forced, free) is not None
    # drop the bridging free edge: now genuinely safe
    assert mixed_graph_unsafe_reason(forced, [("a", "d")]) is None


def test_find_directed_cycle_returns_arc_indices():
    arcs = [("a", "b"), ("b", "c"), ("c", "a"), ("c", "d")]
    cycle = find_directed_cycle(arcs)
    assert cycle is not None
    assert sorted(cycle) == [0, 1, 2]
    assert find_directed_cycle([("a", "b"), ("b", "c")]) is None


# ----------------------------------------------------------------------
# tier-2 on real systems
# ----------------------------------------------------------------------


def _forced_diamond_system():
    """Weak-input edges are direction-forced; four of them in a
    diamond defeat the forest test but not the orientation tier."""
    b = SystemBuilder()
    b.schedule("S1")
    b.transaction("A", "S1", ["a"])
    b.transaction("B", "S1", ["b"])
    b.transaction("C", "S1", ["c"])
    b.transaction("D", "S1", ["d"])
    b.weak_input("S1", "A", "B")
    b.weak_input("S1", "A", "C")
    b.weak_input("S1", "B", "D")
    b.weak_input("S1", "C", "D")
    b.executed("S1", ["a", "b", "c", "d"])
    return b.build()


def test_input_diamond_certified_by_tier2_not_forest():
    system = _forced_diamond_system()
    report = prove_static_safety(system)
    assert report.certified
    assert report.tier == "orientation"
    # the forest test alone saw a cycle at level 1
    cyclic = [w for w in report.witnesses if not w.forest]
    assert cyclic and all(w.orientable is False for w in cyclic)
    # and the certificate is truthful
    assert reduce_to_roots(system).succeeded
    prechecked = reduce_to_roots(system, static_precheck=True)
    assert prechecked.succeeded and prechecked.skipped_by_precheck


def test_oriented_conflict_cycle_is_not_tier2_certified():
    b = SystemBuilder()
    b.schedule("S1")
    b.transaction("T1", "S1", ["a", "b"])
    b.transaction("T2", "S1", ["c"])
    b.conflict("S1", "a", "c")
    b.conflict("S1", "c", "b")
    b.executed("S1", ["a", "b", "c"])
    report = prove_static_safety(b.build())
    assert not report.certified  # free edges form a parallel pair
    assert not report.refuted  # recorded orientations agree


# ----------------------------------------------------------------------
# the corpus acceptance criterion
# ----------------------------------------------------------------------


def _random_mixed_system(seed):
    """A seeded random mixed multigraph realized as a one-schedule
    system: forced weak-input arcs drawn as a DAG by index (so the
    index-order execution is always a valid linear extension) plus
    sparse free conflict edges.  Dense enough in forced arcs that
    diamonds — the unorientable shape — actually occur."""
    rng = random.Random(seed)
    n = rng.randint(4, 7)
    b = SystemBuilder()
    b.schedule("S")
    for i in range(n):
        b.transaction(f"T{i}", "S", [f"o{i}"])
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < 0.35:
                b.weak_input("S", f"T{i}", f"T{j}")
            elif rng.random() < 0.08:
                b.conflict("S", f"o{i}", f"o{j}")
    b.executed("S", [f"o{i}" for i in range(n)])
    return b.build()


def test_tier2_certifies_strictly_more_than_forest():
    """Over a 150-system corpus: the orientation tier certifies a
    strict superset of what the forest test certifies — systems whose
    multigraph *has* cycles, every one of them unorientable — and
    every tier-2 certificate is corroborated by a successful reduction
    (and honored by the precheck skip)."""
    forest = 0
    tier2 = 0
    for seed in range(150):
        system = _random_mixed_system(seed)
        report = prove_static_safety(system)
        if not report.certified:
            continue
        if report.tier == "forest":
            forest += 1
            assert all(w.forest for w in report.witnesses)
            continue
        tier2 += 1
        assert report.tier == "orientation"
        assert any(not w.forest for w in report.witnesses)
        assert reduce_to_roots(system).succeeded, seed
        prechecked = reduce_to_roots(system, static_precheck=True)
        assert prechecked.succeeded and prechecked.skipped_by_precheck
    assert forest > 0  # the baseline tier is alive on this corpus...
    assert tier2 > 0  # ...and tier 2 certifies strictly beyond it
