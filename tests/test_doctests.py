"""Run the doctests embedded in public-API docstrings."""

import doctest

import pytest

import repro
import repro.core.builder
import repro.core.correctness
import repro.core.orders
import repro.criteria.classical

MODULES = [
    repro,
    repro.core.builder,
    repro.core.correctness,
    repro.core.orders,
    repro.criteria.classical,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    failures, tried = doctest.testmod(module, verbose=False)
    assert tried > 0, f"{module.__name__} should carry doctests"
    assert failures == 0
