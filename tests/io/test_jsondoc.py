"""Tests for hardened document loading: CTX4xx diagnostics with file,
line, and byte offset on every malformed-input failure."""

import pytest

from repro.exceptions import ParseError
from repro.io.jsondoc import parse_json_document
from repro.io.text_format import load, loads
from repro.io.trace import load_trace, loads_trace


def err_for(text, **kw):
    with pytest.raises(ParseError) as excinfo:
        parse_json_document(text, **kw)
    return excinfo.value


class TestParseJsonDocument:
    def test_valid_document_passes_through(self):
        assert parse_json_document('{"a": 1}') == {"a": 1}
        assert parse_json_document("[1, 2]") == [1, 2]

    def test_invalid_json_is_ctx401(self):
        err = err_for('{"schedules": }', source="mem.json")
        assert err.diagnostic is not None
        assert err.diagnostic.code == "CTX401"
        assert err.diagnostic.location.file == "mem.json"
        assert err.line == 1
        assert err.offset == 14
        assert "mem.json" in str(err)
        assert "byte offset 14" in str(err)

    def test_truncated_json_is_ctx402(self):
        err = err_for('{"schedules": {"S": ')
        assert err.diagnostic.code == "CTX402"
        assert "truncated" in str(err)
        assert "recover the complete original" in str(err)
        assert err.offset == 20

    def test_truncated_multiline_reports_position(self):
        err = err_for('{\n  "schedules": {\n    "S": [\n')
        assert err.diagnostic.code == "CTX402"
        assert err.line == 4

    def test_array_root_is_ctx403_only_when_object_expected(self):
        assert parse_json_document("[1, 2, 3]") == [1, 2, 3]
        err = err_for("[1, 2, 3]", expect_object=True)
        assert err.diagnostic.code == "CTX403"
        assert "list" in str(err)

    def test_scalar_root_is_ctx403(self):
        err = err_for("42", expect_object=True)
        assert err.diagnostic.code == "CTX403"
        assert "int" in str(err)

    def test_empty_text_is_truncation(self):
        err = err_for("")
        assert err.diagnostic.code == "CTX402"


class TestHardenedLoaders:
    def test_loads_names_no_file(self):
        err = err_for("{broken")
        assert err.diagnostic.location.file is None

    def test_load_names_the_file(self, tmp_path):
        doc = tmp_path / "broken.json"
        doc.write_text('{"schedules": {"S": ')
        with pytest.raises(ParseError) as excinfo:
            load(doc)
        err = excinfo.value
        assert err.diagnostic.code == "CTX402"
        assert err.diagnostic.location.file == str(doc)
        assert str(doc) in str(err)

    def test_loads_rejects_array_root_as_ctx403(self):
        with pytest.raises(ParseError) as excinfo:
            loads("[1, 2]")
        assert excinfo.value.diagnostic.code == "CTX403"

    def test_loads_still_requires_schedules_section(self):
        with pytest.raises(ParseError, match="no 'schedules' section"):
            loads('{"not_schedules": {}}')

    def test_loads_trace_invalid_json(self):
        with pytest.raises(ParseError) as excinfo:
            loads_trace('{"v": 1,,}', source="t.json")
        err = excinfo.value
        assert err.diagnostic.code == "CTX401"
        assert err.diagnostic.location.file == "t.json"

    def test_load_trace_truncated_file(self, tmp_path):
        doc = tmp_path / "trace.json"
        doc.write_text('{"v": 1, "events": [')
        with pytest.raises(ParseError) as excinfo:
            load_trace(doc)
        err = excinfo.value
        assert err.diagnostic.code == "CTX402"
        assert err.diagnostic.location.file == str(doc)
