"""Unit tests for the JSON text format."""

import pytest

from repro.core.correctness import check_composite_correctness
from repro.criteria.registry import RecordedExecution
from repro.exceptions import ParseError
from repro.figures import figure1_system, figure3_system, figure4_system
from repro.io.text_format import dumps, load, loads, save, system_to_spec
from repro.workloads.generator import WorkloadConfig, generate
from repro.workloads.topologies import stack_topology


class TestRoundTrip:
    @pytest.mark.parametrize(
        "factory", [figure1_system, figure3_system, figure4_system]
    )
    def test_verdict_preserved(self, factory):
        original = factory()
        restored = loads(dumps(original)).system
        assert (
            check_composite_correctness(original).correct
            == check_composite_correctness(restored).correct
        )

    def test_structure_preserved(self):
        original = figure1_system()
        restored = loads(dumps(original)).system
        assert set(restored.schedules) == set(original.schedules)
        assert set(restored.roots) == set(original.roots)
        assert restored.levels == original.levels
        for name in original.schedules:
            assert (
                restored.schedule(name).conflicts
                == original.schedule(name).conflicts
            )
            assert (
                restored.schedule(name).weak_output
                == original.schedule(name).weak_output
            )

    def test_recorded_execution_round_trip(self):
        rec = generate(stack_topology(2), WorkloadConfig(seed=1))
        restored = loads(dumps(rec))
        assert restored.executions == {
            k: list(v) for k, v in rec.executions.items()
        }

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "system.json"
        save(figure1_system(), path)
        restored = load(path)
        assert check_composite_correctness(restored.system).correct


class TestErrors:
    def test_invalid_json(self):
        with pytest.raises(ParseError):
            loads("{not json")

    def test_missing_schedules(self):
        with pytest.raises(ParseError):
            loads('{"version": 1}')

    def test_wrong_version(self):
        with pytest.raises(ParseError):
            loads('{"version": 99, "schedules": {}}')

    def test_non_object(self):
        with pytest.raises(ParseError):
            loads("[1, 2, 3]")


class TestSpec:
    def test_system_to_spec_shape(self):
        spec = system_to_spec(figure1_system())
        assert spec["version"] == 1
        assert "SA" in spec["schedules"]
        sa = spec["schedules"]["SA"]
        assert "transactions" in sa and "conflicts" in sa

    def test_dumps_is_deterministic(self):
        assert dumps(figure1_system()) == dumps(figure1_system())
