"""Tests for the reduction-trace exporter."""

import json

from repro.cli import main
from repro.core.reduction import reduce_to_roots
from repro.figures import figure1_system, figure3_system
from repro.io import save
from repro.io.trace import dumps_trace, save_trace, trace_to_dict


class TestTraceDict:
    def test_accepted_trace(self):
        result = reduce_to_roots(figure1_system())
        doc = trace_to_dict(result)
        assert doc["succeeded"] is True
        assert doc["order"] == 3
        assert len(doc["fronts"]) == 4
        assert doc["serial_witness"]
        assert "failure" not in doc
        assert len(doc["witnesses"]) == 3

    def test_rejected_trace(self):
        result = reduce_to_roots(figure3_system())
        doc = trace_to_dict(result)
        assert doc["succeeded"] is False
        assert doc["failure"]["level"] == 3
        assert doc["failure"]["stage"] == "calculation"
        assert doc["failure"]["cycle"][0] == doc["failure"]["cycle"][-1]

    def test_front_payload(self):
        result = reduce_to_roots(figure1_system())
        front = trace_to_dict(result)["fronts"][0]
        assert set(front) == {
            "level",
            "nodes",
            "observed",
            "input_weak",
            "input_strong",
            "conflict_consistent",
        }
        assert front["conflict_consistent"] is True

    def test_json_round_trips(self):
        result = reduce_to_roots(figure3_system())
        text = dumps_trace(result)
        assert json.loads(text)["failure"]["description"]

    def test_save_trace(self, tmp_path):
        path = tmp_path / "trace.json"
        save_trace(reduce_to_roots(figure1_system()), path)
        assert json.loads(path.read_text())["succeeded"] is True


class TestCliTrace:
    def test_check_with_trace(self, tmp_path, capsys):
        source = tmp_path / "fig3.json"
        save(figure3_system(), source)
        trace = tmp_path / "trace.json"
        assert main(["check", str(source), "--trace", str(trace)]) == 0
        assert "trace written" in capsys.readouterr().out
        assert json.loads(trace.read_text())["succeeded"] is False
