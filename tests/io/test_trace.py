"""Tests for the reduction-trace exporter."""

import json

import pytest

from repro.cli import main
from repro.core.reduction import reduce_to_roots
from repro.exceptions import ParseError
from repro.figures import figure1_system, figure3_system
from repro.io import save
from repro.io.trace import (
    TRACE_VERSION,
    diff_traces,
    dumps_trace,
    load_trace,
    loads_trace,
    save_trace,
    trace_from_dict,
    trace_to_dict,
)


class TestTraceDict:
    def test_accepted_trace(self):
        result = reduce_to_roots(figure1_system())
        doc = trace_to_dict(result)
        assert doc["succeeded"] is True
        assert doc["order"] == 3
        assert len(doc["fronts"]) == 4
        assert doc["serial_witness"]
        assert "failure" not in doc
        assert len(doc["witnesses"]) == 3

    def test_rejected_trace(self):
        result = reduce_to_roots(figure3_system())
        doc = trace_to_dict(result)
        assert doc["succeeded"] is False
        assert doc["failure"]["level"] == 3
        assert doc["failure"]["stage"] == "calculation"
        assert doc["failure"]["cycle"][0] == doc["failure"]["cycle"][-1]

    def test_front_payload(self):
        result = reduce_to_roots(figure1_system())
        front = trace_to_dict(result)["fronts"][0]
        assert set(front) == {
            "level",
            "nodes",
            "observed",
            "input_weak",
            "input_strong",
            "conflict_consistent",
        }
        assert front["conflict_consistent"] is True

    def test_json_round_trips(self):
        result = reduce_to_roots(figure3_system())
        text = dumps_trace(result)
        assert json.loads(text)["failure"]["description"]

    def test_save_trace(self, tmp_path):
        path = tmp_path / "trace.json"
        save_trace(reduce_to_roots(figure1_system()), path)
        assert json.loads(path.read_text())["succeeded"] is True


class TestTraceRoundTrip:
    def test_accepted_round_trip(self, tmp_path):
        result = reduce_to_roots(figure1_system())
        path = tmp_path / "trace.json"
        save_trace(result, path)
        trace = load_trace(path)
        assert trace.succeeded is True
        assert trace.order == result.system.order
        assert trace.roots == list(result.system.roots)
        assert trace.serial_witness == result.serial_order()
        assert len(trace.fronts) == len(result.fronts)
        for reloaded, original in zip(trace.fronts, result.fronts):
            assert reloaded.nodes == original.nodes
            assert list(reloaded.observed.pairs()) == list(
                original.observed.pairs()
            )
            assert reloaded.is_conflict_consistent()

    def test_rejected_round_trip(self):
        result = reduce_to_roots(figure3_system())
        trace = loads_trace(dumps_trace(result))
        assert trace.succeeded is False
        assert trace.failure["stage"] == "calculation"
        assert trace.serial_witness is None

    def test_profile_round_trips(self):
        result = reduce_to_roots(figure1_system())
        trace = loads_trace(dumps_trace(result))
        assert [p.level for p in trace.profile] == [
            p.level for p in result.profile
        ]
        assert [p.closure_rows for p in trace.profile] == [
            p.closure_rows for p in result.profile
        ]

    def test_version_check(self):
        doc = trace_to_dict(reduce_to_roots(figure1_system()))
        doc["version"] = TRACE_VERSION + 1
        with pytest.raises(ParseError, match="unsupported trace version"):
            trace_from_dict(doc)
        del doc["version"]
        with pytest.raises(ParseError, match="unsupported trace version"):
            trace_from_dict(doc)

    def test_tampered_consistency_flag_rejected(self):
        doc = trace_to_dict(reduce_to_roots(figure1_system()))
        doc["fronts"][0]["conflict_consistent"] = False
        with pytest.raises(ParseError, match="disagree"):
            trace_from_dict(doc)

    def test_level_accessor(self):
        trace = loads_trace(dumps_trace(reduce_to_roots(figure1_system())))
        assert trace.level(0).level == 0
        with pytest.raises(ParseError):
            trace.level(99)

    def test_utf8_on_disk(self, tmp_path):
        path = tmp_path / "trace.json"
        save_trace(reduce_to_roots(figure1_system()), path)
        json.loads(path.read_text(encoding="utf-8"))

    def test_diff_identical_traces_is_empty(self):
        text = dumps_trace(reduce_to_roots(figure1_system()))
        assert diff_traces(loads_trace(text), loads_trace(text)) == []

    def test_diff_reports_verdict_and_fronts(self):
        accepted = loads_trace(dumps_trace(reduce_to_roots(figure1_system())))
        rejected = loads_trace(dumps_trace(reduce_to_roots(figure3_system())))
        report = diff_traces(accepted, rejected)
        assert any("verdict" in line for line in report)


class TestCliTrace:
    def test_check_with_trace(self, tmp_path, capsys):
        source = tmp_path / "fig3.json"
        save(figure3_system(), source)
        trace = tmp_path / "trace.json"
        assert main(["check", str(source), "--trace", str(trace)]) == 0
        assert "trace written" in capsys.readouterr().out
        assert json.loads(trace.read_text())["succeeded"] is False
