"""Tests for the reduction-trace exporter."""

import json

import pytest

from repro.cli import main
from repro.core.reduction import reduce_to_roots
from repro.exceptions import ParseError
from repro.figures import figure1_system, figure3_system
from repro.io import save
from repro.io.trace import (
    TRACE_VERSION,
    diff_traces,
    dumps_trace,
    load_trace,
    loads_trace,
    save_trace,
    trace_from_dict,
    trace_to_dict,
)


class TestTraceDict:
    def test_accepted_trace(self):
        result = reduce_to_roots(figure1_system())
        doc = trace_to_dict(result)
        assert doc["succeeded"] is True
        assert doc["order"] == 3
        assert len(doc["fronts"]) == 4
        assert doc["serial_witness"]
        assert "failure" not in doc
        assert len(doc["witnesses"]) == 3

    def test_rejected_trace(self):
        result = reduce_to_roots(figure3_system())
        doc = trace_to_dict(result)
        assert doc["succeeded"] is False
        assert doc["failure"]["level"] == 3
        assert doc["failure"]["stage"] == "calculation"
        assert doc["failure"]["cycle"][0] == doc["failure"]["cycle"][-1]

    def test_front_payload(self):
        result = reduce_to_roots(figure1_system())
        front = trace_to_dict(result)["fronts"][0]
        assert set(front) == {
            "level",
            "nodes",
            "observed",
            "input_weak",
            "input_strong",
            "conflict_consistent",
        }
        assert front["conflict_consistent"] is True

    def test_json_round_trips(self):
        result = reduce_to_roots(figure3_system())
        text = dumps_trace(result)
        assert json.loads(text)["failure"]["description"]

    def test_save_trace(self, tmp_path):
        path = tmp_path / "trace.json"
        save_trace(reduce_to_roots(figure1_system()), path)
        assert json.loads(path.read_text())["succeeded"] is True


class TestTraceRoundTrip:
    def test_accepted_round_trip(self, tmp_path):
        result = reduce_to_roots(figure1_system())
        path = tmp_path / "trace.json"
        save_trace(result, path)
        trace = load_trace(path)
        assert trace.succeeded is True
        assert trace.order == result.system.order
        assert trace.roots == list(result.system.roots)
        assert trace.serial_witness == result.serial_order()
        assert len(trace.fronts) == len(result.fronts)
        for reloaded, original in zip(trace.fronts, result.fronts):
            assert reloaded.nodes == original.nodes
            assert list(reloaded.observed.pairs()) == list(
                original.observed.pairs()
            )
            assert reloaded.is_conflict_consistent()

    def test_rejected_round_trip(self):
        result = reduce_to_roots(figure3_system())
        trace = loads_trace(dumps_trace(result))
        assert trace.succeeded is False
        assert trace.failure["stage"] == "calculation"
        assert trace.serial_witness is None

    def test_profile_round_trips(self):
        result = reduce_to_roots(figure1_system())
        trace = loads_trace(dumps_trace(result))
        assert [p.level for p in trace.profile] == [
            p.level for p in result.profile
        ]
        assert [p.closure_rows for p in trace.profile] == [
            p.closure_rows for p in result.profile
        ]

    def test_version_check(self):
        doc = trace_to_dict(reduce_to_roots(figure1_system()))
        doc["version"] = TRACE_VERSION + 1
        with pytest.raises(ParseError, match="unsupported trace version"):
            trace_from_dict(doc)
        del doc["version"]
        with pytest.raises(ParseError, match="unsupported trace version"):
            trace_from_dict(doc)

    def test_tampered_consistency_flag_rejected(self):
        doc = trace_to_dict(reduce_to_roots(figure1_system()))
        doc["fronts"][0]["conflict_consistent"] = False
        with pytest.raises(ParseError, match="disagree"):
            trace_from_dict(doc)

    def test_level_accessor(self):
        trace = loads_trace(dumps_trace(reduce_to_roots(figure1_system())))
        assert trace.level(0).level == 0
        with pytest.raises(ParseError):
            trace.level(99)

    def test_utf8_on_disk(self, tmp_path):
        path = tmp_path / "trace.json"
        save_trace(reduce_to_roots(figure1_system()), path)
        json.loads(path.read_text(encoding="utf-8"))

    def test_diff_identical_traces_is_empty(self):
        text = dumps_trace(reduce_to_roots(figure1_system()))
        assert diff_traces(loads_trace(text), loads_trace(text)) == []

    def test_diff_reports_verdict_and_fronts(self):
        accepted = loads_trace(dumps_trace(reduce_to_roots(figure1_system())))
        rejected = loads_trace(dumps_trace(reduce_to_roots(figure3_system())))
        report = diff_traces(accepted, rejected)
        assert any("verdict" in line for line in report)


class TestCliTrace:
    def test_check_with_trace(self, tmp_path, capsys):
        source = tmp_path / "fig3.json"
        save(figure3_system(), source)
        trace = tmp_path / "trace.json"
        assert main(["check", str(source), "--trace", str(trace)]) == 0
        assert "trace written" in capsys.readouterr().out
        assert json.loads(trace.read_text())["succeeded"] is False


# ----------------------------------------------------------------------
# version 2: explicit skip provenance (both static-skip directions)
# ----------------------------------------------------------------------
def _lost_update_system():
    from repro.core.builder import SystemBuilder

    b = SystemBuilder()
    b.schedule("S1")
    b.transaction("T1", "S1", ["a", "b"])
    b.transaction("T2", "S1", ["c"])
    b.conflict("S1", "a", "c")
    b.conflict("S1", "c", "b")
    b.executed("S1", ["a", "c", "b"])
    return b.build()


def _certified_system():
    from pathlib import Path

    from repro.io import load

    return load(
        Path(__file__).resolve().parents[2]
        / "examples"
        / "lint"
        / "booking_system.json"
    ).system


class TestSkipProvenance:
    def test_plain_run_has_null_skip(self):
        doc = trace_to_dict(reduce_to_roots(figure1_system()))
        assert doc["version"] == 2
        assert doc["skip"] is None
        trace = trace_from_dict(doc)
        assert not trace.skipped_by_precheck
        assert not trace.skipped_by_refutation

    def test_precheck_skip_round_trips(self):
        """A precheck-skipped accept is no longer ambiguous: v1 wrote
        only ``"serial_witness": null`` (indistinguishable from a
        dropped witness); v2 records the direction explicitly."""
        result = reduce_to_roots(_certified_system(), static_precheck=True)
        assert result.skipped_by_precheck
        trace = loads_trace(dumps_trace(result))
        assert trace.succeeded
        assert trace.serial_witness is None
        assert trace.skip == {"direction": "precheck"}
        assert trace.skipped_by_precheck
        assert not trace.skipped_by_refutation

    def test_refutation_skip_round_trips(self):
        """The PR-8 refute-skip state survives the round trip: v1
        dropped it entirely."""
        result = reduce_to_roots(_lost_update_system(), static_precheck=True)
        assert result.skipped_by_refutation
        trace = loads_trace(dumps_trace(result))
        assert not trace.succeeded
        assert trace.failure is not None
        assert trace.skip == {"direction": "refutation"}
        assert trace.skipped_by_refutation
        assert not trace.skipped_by_precheck
        # the witness provenance rides on the certificate
        assert trace.static_certificate["verdict"] == "certified_unsafe"

    @pytest.mark.parametrize("certified", [True, False])
    def test_v1_trace_still_loads_with_inferred_skip(self, certified):
        system = _certified_system() if certified else _lost_update_system()
        result = reduce_to_roots(system, static_precheck=True)
        doc = trace_to_dict(result)
        doc["version"] = 1
        del doc["skip"]  # v1 documents have no skip field
        trace = trace_from_dict(doc)
        direction = (
            "precheck" if result.skipped_by_precheck else "refutation"
        )
        assert trace.skip == {"direction": direction}

    def test_v1_full_run_infers_no_skip(self):
        doc = trace_to_dict(reduce_to_roots(figure1_system()))
        doc["version"] = 1
        del doc["skip"]
        assert trace_from_dict(doc).skip is None

    def test_diff_reports_skip_difference(self):
        system = _certified_system()
        full = loads_trace(dumps_trace(reduce_to_roots(system)))
        skipped = loads_trace(
            dumps_trace(reduce_to_roots(system, static_precheck=True))
        )
        assert any("skip" in line for line in diff_traces(full, skipped))
