"""The streaming event-log format: schema, round trip, converter
fidelity.

The load-bearing property is *exact inversion*: converting a recorded
execution to an event log and reassembling it must reproduce the
original system byte-for-byte (same spec text, hence the same interned
element orders in every relation) — that is what makes the streaming
checker's telemetry comparable to the batch path at all.
"""

import pytest

from repro.exceptions import ParseError, StreamError
from repro.figures import figure1_system, figure3_system
from repro.io import dumps, load
from repro.io.eventlog import (
    EVENTLOG_VERSION,
    Event,
    dumps_event,
    dumps_event_log,
    event_from_dict,
    events_from_recorded,
    load_event_log,
    loads_event_log,
    parse_event_line,
    save_event_log,
)
from repro.criteria.registry import RecordedExecution
from repro.stream import StreamAssembler
from repro.workloads.generator import WorkloadConfig, generate
from repro.workloads.topologies import stack_topology, tree_topology

FIXTURE = "tests/fixtures/unsafe_lost_update.json"


def _reassemble(events):
    assembler = StreamAssembler()
    for event in events:
        assembler.apply(event)
    return assembler.build()


# ----------------------------------------------------------------------
# schema
# ----------------------------------------------------------------------
class TestSchema:
    def test_header_carries_version(self):
        line = dumps_event(Event(kind="log", derive="declared"))
        assert f'"v":{EVENTLOG_VERSION}' in line
        event = parse_event_line(line)
        assert event.kind == "log" and event.derive == "declared"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ParseError, match="unknown event kind"):
            parse_event_line('{"e": "frobnicate"}')

    def test_missing_required_field_rejected(self):
        with pytest.raises(ParseError, match="missing required field"):
            parse_event_line('{"e": "commit"}')

    def test_unknown_field_rejected(self):
        with pytest.raises(ParseError, match="unknown event field"):
            parse_event_line('{"e": "commit", "root": "T1", "bogus": 1}')

    def test_unknown_version_rejected(self):
        with pytest.raises(ParseError, match="unsupported event log"):
            parse_event_line('{"e": "log", "v": 99, "derive": "declared"}')

    def test_header_without_version_rejected(self):
        with pytest.raises(ParseError, match="missing the schema version"):
            parse_event_line('{"e": "log", "derive": "declared"}')

    def test_invalid_json_names_source_and_line(self):
        with pytest.raises(ParseError, match=r"log\.jsonl:7"):
            parse_event_line("{nope", source="log.jsonl", line=7)

    def test_unknown_order_kind_rejected(self):
        with pytest.raises(ParseError, match="unknown order kind"):
            event_from_dict(
                {
                    "e": "order",
                    "schedule": "S",
                    "kind": "sideways",
                    "a": "x",
                    "b": "y",
                }
            )

    def test_log_without_header_rejected(self):
        with pytest.raises(ParseError, match="does not start"):
            loads_event_log('{"e": "end"}\n')

    def test_event_line_round_trips(self):
        event = Event(
            kind="txn",
            root="T1",
            schedule="S1",
            txn="T1",
            ops=("a", "b"),
            weak=(("a", "b"),),
        )
        assert parse_event_line(dumps_event(event)) == event


# ----------------------------------------------------------------------
# converter fidelity
# ----------------------------------------------------------------------
class TestConverter:
    @pytest.mark.parametrize(
        "make", [figure1_system, figure3_system], ids=["fig1", "fig3"]
    )
    def test_figure_systems_round_trip(self, make):
        recorded = RecordedExecution(system=make())
        events = events_from_recorded(recorded)
        assert events[0].kind == "log"
        assert events[-1].kind == "end"
        rebuilt = _reassemble(events)
        assert dumps(rebuilt) == dumps(recorded)

    def test_fixture_round_trips(self):
        recorded = load(FIXTURE)
        rebuilt = _reassemble(events_from_recorded(recorded))
        assert dumps(rebuilt) == dumps(recorded)

    def test_executions_map_round_trips(self):
        recorded = generate(
            stack_topology(2), WorkloadConfig(seed=5, roots=3)
        )
        assert recorded.executions  # generated workloads lay out arrivals
        rebuilt = _reassemble(events_from_recorded(recorded))
        assert dumps(rebuilt) == dumps(recorded)
        assert {
            k: list(v) for k, v in rebuilt.executions.items()
        } == {k: list(v) for k, v in recorded.executions.items()}

    def test_generated_workloads_round_trip(self):
        for seed in range(8):
            recorded = generate(
                tree_topology(2, 2),
                WorkloadConfig(seed=seed, roots=3, conflict_probability=0.2),
            )
            rebuilt = _reassemble(events_from_recorded(recorded))
            assert dumps(rebuilt) == dumps(recorded), seed

    def test_jsonl_file_round_trips(self, tmp_path):
        recorded = generate(stack_topology(2), WorkloadConfig(seed=1))
        events = events_from_recorded(recorded)
        path = tmp_path / "log.jsonl"
        save_event_log(events, path)
        assert load_event_log(path) == events

    def test_commit_count_matches_roots(self):
        recorded = load(FIXTURE)
        events = events_from_recorded(recorded)
        commits = [e for e in events if e.kind == "commit"]
        assert len(commits) == len(recorded.system.roots)

    def test_text_round_trips_through_lines(self):
        recorded = load(FIXTURE)
        events = events_from_recorded(recorded)
        assert loads_event_log(dumps_event_log(events)) == events


# ----------------------------------------------------------------------
# assembler protocol errors
# ----------------------------------------------------------------------
class TestAssemblerProtocol:
    def test_events_before_header_rejected(self):
        assembler = StreamAssembler()
        with pytest.raises(StreamError, match="before the 'log' header"):
            assembler.apply(Event(kind="begin", root="T1"))

    def test_duplicate_commit_rejected(self):
        events = events_from_recorded(load(FIXTURE))
        assembler = StreamAssembler()
        for event in events[:-1]:  # hold back `end`
            assembler.apply(event)
        commit = next(e for e in events if e.kind == "commit")
        with pytest.raises(StreamError, match="duplicate commit"):
            assembler.apply(commit)

    def test_commit_of_undeclared_root_rejected(self):
        assembler = StreamAssembler()
        assembler.apply(Event(kind="log", derive="declared"))
        with pytest.raises(StreamError, match="no staged transactions"):
            assembler.apply(Event(kind="commit", root="ghost"))

    def test_events_after_end_rejected(self):
        assembler = StreamAssembler()
        assembler.apply(Event(kind="log", derive="declared"))
        assembler.apply(Event(kind="end"))
        with pytest.raises(StreamError, match="after the end"):
            assembler.apply(Event(kind="commit", root="T1"))

    def test_abort_discards_the_attempt(self):
        recorded = load(FIXTURE)
        events = events_from_recorded(recorded)
        [root] = [e.root for e in events if e.kind == "commit"][:1]
        # abort the root mid-stream, then re-declare and commit again:
        # the rebuilt system is semantically the original (re-declaring
        # after the conflict/order decls changes element interning
        # order, so byte equality is out of reach here — by design)
        out = [events[0]]
        decls = [
            e
            for e in events
            if e.kind in ("txn", "conflict", "order")
        ]
        arrivals = [e for e in events if e.kind in ("access", "call")]
        commits = [e for e in events if e.kind == "commit"]
        out += decls
        out.append(Event(kind="begin", root=root))
        out += [a for a in arrivals if a.root == root]
        out.append(Event(kind="abort", root=root))
        # retry: transactions must be re-declared after an abort
        out.append(Event(kind="begin", root=root))
        out += [d for d in decls if d.kind == "txn" and d.root == root]
        out += [a for a in arrivals if a.root == root]
        out += [a for a in arrivals if a.root != root]
        out += commits
        out.append(Event(kind="end"))
        rebuilt = _reassemble(out)
        assert set(rebuilt.system.schedules) == set(recorded.system.schedules)
        for name, orig in recorded.system.schedules.items():
            got = rebuilt.system.schedule(name)
            assert set(got.conflicts) == set(orig.conflicts)
            for rel in ("weak_output", "strong_output", "weak_input", "strong_input"):
                assert set(getattr(got, rel).pairs()) == set(
                    getattr(orig, rel).pairs()
                ), (name, rel)

    def test_build_before_first_commit_is_none(self):
        assembler = StreamAssembler()
        assembler.apply(Event(kind="log", derive="declared"))
        assert assembler.build() is None
