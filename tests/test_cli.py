"""CLI tests (direct main() invocation; one subprocess smoke test)."""

import subprocess
import sys

import pytest

from repro.cli import main
from repro.figures import figure1_system, figure3_system
from repro.io import save


@pytest.fixture()
def correct_file(tmp_path):
    path = tmp_path / "fig1.json"
    save(figure1_system(), path)
    return str(path)


@pytest.fixture()
def incorrect_file(tmp_path):
    path = tmp_path / "fig3.json"
    save(figure3_system(), path)
    return str(path)


class TestCheck:
    def test_correct(self, correct_file, capsys):
        assert main(["check", correct_file]) == 0
        assert "ACCEPTED" in capsys.readouterr().out

    def test_incorrect(self, incorrect_file, capsys):
        assert main(["check", incorrect_file]) == 0
        assert "REJECTED" in capsys.readouterr().out

    def test_strict_exit_code(self, incorrect_file, correct_file):
        assert main(["check", "--strict", incorrect_file]) == 2
        assert main(["check", "--strict", correct_file]) == 0

    def test_profile(self, correct_file, capsys):
        assert main(["check", "--profile", correct_file]) == 0
        out = capsys.readouterr().out
        assert "reduction profile" in out
        assert "closure" in out
        assert "total" in out


class TestInfo:
    def test_info(self, correct_file, capsys):
        assert main(["info", correct_file]) == 0
        out = capsys.readouterr().out
        assert "level 3: SA" in out
        assert "comp_c" in out


class TestRender:
    def test_ascii(self, correct_file, capsys):
        assert main(["render", correct_file]) == 0
        assert "T1" in capsys.readouterr().out

    def test_dot(self, correct_file, capsys):
        assert main(["render", correct_file, "--format", "dot-forest"]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_dot_invocation(self, correct_file, capsys):
        assert (
            main(["render", correct_file, "--format", "dot-invocation"]) == 0
        )
        assert '"SA" -> "SB"' in capsys.readouterr().out


class TestGenerateAndRoundTrip:
    def test_generate_then_check(self, tmp_path, capsys):
        out = str(tmp_path / "gen.json")
        assert (
            main(
                [
                    "generate",
                    "--topology",
                    "fork",
                    "--width",
                    "3",
                    "--roots",
                    "3",
                    "--layout",
                    "serial",
                    "-o",
                    out,
                ]
            )
            == 0
        )
        assert "Comp-C" in capsys.readouterr().out
        assert main(["check", "--strict", out]) == 0

    def test_generate_all_topologies(self, tmp_path):
        for topo in ("stack", "fork", "join", "tree", "dag"):
            out = str(tmp_path / f"{topo}.json")
            args = ["generate", "--topology", topo, "-o", out]
            if topo in ("stack", "tree", "dag"):
                args += ["--depth", "2"]
            if topo in ("fork", "join", "tree", "dag"):
                args += ["--width", "2"]
            assert main(args) == 0


class TestSimulate:
    def test_simulate_prints_metrics(self, tmp_path, capsys):
        out = str(tmp_path / "sim.json")
        code = main(
            [
                "simulate",
                "--topology",
                "join",
                "--width",
                "2",
                "--clients",
                "2",
                "--transactions",
                "3",
                "-o",
                out,
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "throughput" in text
        assert "Comp-C" in text
        assert main(["check", out]) == 0


class TestFiguresAndExperiments:
    def test_figures_all(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out and "REJECTED" in out

    def test_single_figure(self, capsys):
        assert main(["figures", "4"]) == 0
        assert "ACCEPTED" in capsys.readouterr().out

    @pytest.mark.parametrize("name", ["t2", "t3", "t4"])
    def test_theorem_experiments(self, name, capsys):
        assert main(["experiment", name, "--trials", "8"]) == 0
        assert "agreements" in capsys.readouterr().out

    def test_h1(self, capsys):
        assert main(["experiment", "h1", "--trials", "6"]) == 0
        assert "containment violations: 0" in capsys.readouterr().out

    def test_a1(self, capsys):
        assert main(["experiment", "a1", "--trials", "10"]) == 0
        assert "no forgetting" in capsys.readouterr().out

    def test_p2(self, capsys):
        assert main(["experiment", "p2"]) == 0
        assert "nodes" in capsys.readouterr().out

    def test_t1(self, capsys):
        assert main(["experiment", "t1", "--trials", "8"]) == 0
        assert "certificates" in capsys.readouterr().out


def test_module_entry_point():
    completed = subprocess.run(
        [sys.executable, "-m", "repro", "figures", "3"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0
    assert "REJECTED" in completed.stdout
