"""CLI tests for the Def.-18 compare command."""

import pytest

from repro.cli import main
from repro.core.builder import SystemBuilder
from repro.figures import figure3_system
from repro.io import save


def deep(db_exec):
    b = SystemBuilder()
    b.transaction("T1", "Top", ["u"])
    b.transaction("T2", "Top", ["v"])
    b.conflict("Top", "u", "v")
    b.executed("Top", ["u", "v"])
    b.transaction("u", "DB", ["x"])
    b.transaction("v", "DB", ["y"])
    b.conflict("DB", "x", "y")
    b.executed("DB", list(db_exec))
    return b.build()


def flat(order):
    b = SystemBuilder()
    b.transaction("T1", "S", ["a"])
    b.transaction("T2", "S", ["b"])
    b.conflict("S", "a", "b")
    b.executed("S", list(order))
    return b.build()


@pytest.fixture()
def files(tmp_path):
    paths = {}
    save(deep(("x", "y")), tmp_path / "deep.json")
    save(flat(("a", "b")), tmp_path / "flat_same.json")
    save(flat(("b", "a")), tmp_path / "flat_flipped.json")
    save(figure3_system(), tmp_path / "broken.json")
    for name in ("deep", "flat_same", "flat_flipped", "broken"):
        paths[name] = str(tmp_path / f"{name}.json")
    return paths


class TestCompare:
    def test_equivalent(self, files, capsys):
        code = main(["compare", files["deep"], files["flat_same"]])
        assert code == 0
        assert "YES" in capsys.readouterr().out

    def test_not_equivalent(self, files, capsys):
        code = main(["compare", files["deep"], files["flat_flipped"]])
        assert code == 3
        out = capsys.readouterr().out
        assert "NO" in out

    def test_rejected_execution_has_no_front(self, files, capsys):
        code = main(["compare", files["broken"], files["flat_same"]])
        assert code == 3
        assert "NO FRONT" in capsys.readouterr().out

    def test_explicit_levels(self, files, capsys):
        code = main(
            [
                "compare",
                files["deep"],
                files["deep"],
                "--level-a",
                "1",
                "--level-b",
                "1",
            ]
        )
        assert code == 0

    def test_rename(self, files, tmp_path, capsys):
        b = SystemBuilder()
        b.transaction("P", "S", ["a"]).transaction("Q", "S", ["b"])
        b.conflict("S", "a", "b")
        b.executed("S", ["a", "b"])
        save(b.build(), tmp_path / "renamed.json")
        code = main(
            [
                "compare",
                files["flat_same"],
                str(tmp_path / "renamed.json"),
                "--rename",
                "T1=P",
                "--rename",
                "T2=Q",
            ]
        )
        assert code == 0

    def test_bad_rename_syntax(self, files):
        with pytest.raises(SystemExit):
            main(
                [
                    "compare",
                    files["deep"],
                    files["flat_same"],
                    "--rename",
                    "nonsense",
                ]
            )
