"""The incremental checker itself: early rejection, sticky verdicts,
arrival-order independence, and the live/batch certification step."""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.core.reduction import reduce_to_roots
from repro.exceptions import StreamError
from repro.io import load
from repro.io.eventlog import Event, events_from_recorded
from repro.stream import IncrementalChecker
from repro.workloads.generator import WorkloadConfig, generate
from repro.workloads.topologies import stack_topology, tree_topology

FIXTURE = "tests/fixtures/unsafe_lost_update.json"


def _fixture_events():
    return events_from_recorded(load(FIXTURE))


# ----------------------------------------------------------------------
# live verdicts
# ----------------------------------------------------------------------
def test_rejects_before_the_stream_ends():
    """The lost-update log flips to REJECTED at the commit that closes
    the cycle — strictly before the ``end`` event arrives."""
    events = _fixture_events()
    checker = IncrementalChecker()
    flipped_at = None
    for i, event in enumerate(events):
        verdict = checker.ingest(event)
        if verdict.rejected and flipped_at is None:
            flipped_at = i
    assert flipped_at is not None
    assert flipped_at < len(events) - 1  # before `end`
    assert events[flipped_at].kind == "commit"
    verdict = checker.verdict()
    assert verdict.rejected_at_event == flipped_at + 1  # 1-based
    assert verdict.failure is not None
    assert "REJECTED" in verdict.describe()


def test_rejection_is_sticky():
    events = _fixture_events()
    checker = IncrementalChecker()
    checker.ingest_all(events)
    assert checker.verdict().rejected
    first = checker.verdict()
    # the recheck ran once per pre-rejection commit only
    result = checker.finalize()
    assert result.verdict == first
    assert result.reduction is not None
    assert result.reduction.failure is not None


def test_accepting_stream_stays_accepted():
    recorded = generate(
        stack_topology(2), WorkloadConfig(seed=2, conflict_probability=0.0)
    )
    assert reduce_to_roots(recorded.system).succeeded
    checker = IncrementalChecker()
    verdict = checker.ingest_all(events_from_recorded(recorded))
    assert not verdict.rejected
    assert verdict.commits == len(recorded.system.roots)
    result = checker.finalize()
    assert result.reduction is not None and result.reduction.succeeded


def test_finalize_before_any_commit_certifies_nothing():
    checker = IncrementalChecker()
    checker.ingest(Event(kind="log", derive="declared"))
    result = checker.finalize()
    assert result.reduction is None and result.recorded is None
    assert not result.verdict.rejected
    assert result.verdict.commits == 0


def test_verdict_counts_events_and_commits():
    events = _fixture_events()
    checker = IncrementalChecker()
    verdict = checker.ingest_all(events)
    assert verdict.events == len(events)
    assert verdict.commits == len(
        [e for e in events if e.kind == "commit"]
    )


def test_protocol_violation_surfaces_as_stream_error():
    checker = IncrementalChecker()
    with pytest.raises(StreamError):
        checker.ingest(Event(kind="commit", root="T1"))


# ----------------------------------------------------------------------
# arrival-order independence
# ----------------------------------------------------------------------
def _shuffled_log(events, data):
    """A valid re-interleaving of ``events``: commit order permuted,
    per-schedule arrival sequences interleaved arbitrarily (relative
    order within a schedule preserved), declarations untouched."""
    header, end = events[0], events[-1]
    decls = [e for e in events if e.kind in ("txn", "conflict", "order")]
    begins = {e.root: e for e in events if e.kind == "begin"}
    commits = [e for e in events if e.kind == "commit"]
    queues = {}
    for e in events:
        if e.kind in ("access", "call"):
            queues.setdefault(e.schedule, []).append(e)
    commit_order = data.draw(st.permutations(commits))
    merged = []
    pending = {k: list(v) for k, v in queues.items()}
    while any(pending.values()):
        name = data.draw(
            st.sampled_from(sorted(k for k, q in pending.items() if q))
        )
        merged.append(pending[name].pop(0))
    return (
        [header]
        + decls
        + [begins[c.root] for c in commit_order]
        + merged
        + list(commit_order)
        + [end]
    )


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_any_arrival_order_yields_the_batch_verdict(data):
    """Permuting commit order and re-interleaving arrivals across
    schedules never changes the final verdict: it always equals the
    batch reduction of the original system, and finalize's
    live-vs-batch hard assert holds along the way."""
    seed = data.draw(st.integers(min_value=0, max_value=24))
    recorded = generate(
        tree_topology(2, 2),
        WorkloadConfig(seed=seed, roots=3, conflict_probability=0.2),
    )
    events = _shuffled_log(events_from_recorded(recorded), data)
    checker = IncrementalChecker()
    verdict = checker.ingest_all(events)
    batch = reduce_to_roots(recorded.system)
    assert verdict.rejected == (batch.failure is not None)
    result = checker.finalize()  # raises StreamError on disagreement
    assert result.reduction is not None
    assert (result.reduction.failure is not None) == (
        batch.failure is not None
    )
