"""The streaming kill-and-resume contract, end to end through the CLI:
SIGKILL a following ``composite-tx watch`` mid-log, resume it from the
snapshot it left behind, and the certified verdict plus canonical
telemetry are byte-identical to an uninterrupted batch ``check`` —
while the resumed watch replays strictly fewer events than the log
holds (mirrors ``tests/analysis/test_checkpoint.py`` for the batch
layer)."""

import json
import os
import subprocess
import sys
import time

import repro
from repro.io import save
from repro.io.eventlog import dumps_event, events_from_recorded
from repro.obs import canonical_dumps, read_records
from repro.workloads.generator import WorkloadConfig, generate
from repro.workloads.topologies import stack_topology

SRC = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _run_cli(args, cwd, timeout=120):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def test_sigkilled_watch_resumes_byte_identical(tmp_path):
    recorded = generate(
        stack_topology(3),
        WorkloadConfig(seed=11, roots=4, conflict_probability=0.2),
    )
    events = events_from_recorded(recorded)
    exec_path = tmp_path / "exec.json"
    save(recorded, str(exec_path))

    # uninterrupted reference: the batch check's canonical telemetry
    ref = _run_cli(
        ["check", str(exec_path), "--telemetry-out",
         str(tmp_path / "ref.jsonl")],
        cwd=str(tmp_path),
    )
    assert ref.returncode in (0, 2), ref.stderr

    # a live writer appends the log while a following watch tails it
    log = tmp_path / "log.jsonl"
    snap = tmp_path / "snap.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    victim = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "watch", str(log),
            "--follow", "--interval", "0.01",
            "--snapshot-out", str(snap),
        ],
        cwd=str(tmp_path),
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        half = len(events) // 2
        with open(log, "w", encoding="utf-8") as handle:
            for event in events[:half]:
                handle.write(dumps_event(event) + "\n")
            handle.flush()
        # SIGKILL once a snapshot covering some of the prefix exists
        deadline = time.time() + 60
        while time.time() < deadline:
            if victim.poll() is not None:
                break
            try:
                if json.loads(snap.read_text())["log"]["offset"] > 0:
                    break
            except (OSError, json.JSONDecodeError, KeyError):
                pass
            time.sleep(0.005)
        killed_mid_watch = victim.poll() is None
        victim.kill()
    finally:
        victim.wait(timeout=60)
    assert killed_mid_watch, "watch exited before the kill landed"

    # the snapshot on disk is complete JSON despite the SIGKILL
    document = json.loads(snap.read_text())
    assert document["v"] == 1
    snapshot_events = document["log"]["line"]
    assert 0 < snapshot_events <= half

    # the writer finishes the log; the resumed watch replays only the
    # suffix past the snapshot and certifies
    with open(log, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(dumps_event(event) + "\n")
    resumed = _run_cli(
        [
            "watch", str(log),
            "--resume-from-snapshot", str(snap),
            "--telemetry-out", str(tmp_path / "watch.jsonl"),
        ],
        cwd=str(tmp_path),
    )
    assert resumed.returncode == 0, resumed.stderr
    assert f"{snapshot_events} event(s) restored" in resumed.stderr

    # canonical telemetry byte-identity with the uninterrupted check
    ours = canonical_dumps(read_records(str(tmp_path / "watch.jsonl")))
    theirs = canonical_dumps(read_records(str(tmp_path / "ref.jsonl")))
    assert ours == theirs

    # strictly fewer events replayed than the log holds, and the
    # recovery is measured on the watch stream
    records = read_records(str(tmp_path / "watch.jsonl"))
    recover = [r for r in records if r.get("name") == "stream.recover"]
    assert recover and recover[0]["fields"]["mode"] == "snapshot"
    assert recover[0]["fields"]["events"] == snapshot_events
    replayed = [
        r for r in records
        if r.get("name") == "stream.recover.replayed"
    ]
    assert replayed
    assert replayed[0]["fields"]["value"] == len(events) - snapshot_events
    assert replayed[0]["fields"]["value"] < len(events)
