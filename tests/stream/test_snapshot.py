"""Snapshot/resume contract: a checker frozen after ANY prefix and
resumed over the suffix is byte-for-byte the uninterrupted watch —
same verdict, same witness, same canonical telemetry — and snapshots
that cannot be trusted (corrupt, wrong version, log diverged or
truncated) are rejected with the right CTX diagnostic instead of
resuming lying state."""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import SnapshotError
from repro.io.eventlog import dumps_event, events_from_recorded
from repro.obs import canonical_dumps
from repro.obs.sink import sort_events, to_record
from repro.obs.telemetry import Telemetry, current, using
from repro.stream import (
    SNAPSHOT_VERSION,
    EventLogTail,
    IncrementalChecker,
    SnapshotWriter,
    read_snapshot,
    restore_checker,
    restore_tail,
    verify_snapshot,
    write_snapshot,
)
from repro.workloads.generator import WorkloadConfig, generate
from repro.workloads.topologies import stack_topology

SPEC = stack_topology(3)


def _workload(seed):
    recorded = generate(
        SPEC,
        WorkloadConfig(seed=seed, roots=3, conflict_probability=0.2),
    )
    return events_from_recorded(recorded)


def _write_log(path, events):
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(dumps_event(event) + "\n")


def _records(telemetry):
    return [to_record(e) for e in sort_events(telemetry.collect())]


def _watch(log_path, *, snapshot=None, resume_from=None):
    """A ``cmd_watch``-shaped run over a complete log file: ambient
    main-stream command span, watch records absorbed at the end."""
    telemetry = Telemetry(stream="main")
    with using(telemetry):
        with telemetry.span("cli.command", command="watch"):
            if resume_from is not None:
                document = read_snapshot(resume_from)
                verify_snapshot(
                    document, log_path, snapshot_path=str(resume_from)
                )
                checker = restore_checker(document)
                tail = restore_tail(document, log_path)
            else:
                checker = IncrementalChecker()
                tail = EventLogTail(log_path)
            writer = (
                SnapshotWriter(snapshot, telemetry=checker.telemetry)
                if snapshot is not None
                else None
            )
            replayed = 0
            while True:
                events = tail.poll()
                for tailed in events:
                    checker.ingest(tailed.event)
                    replayed += 1
                if writer is not None and events:
                    writer.maybe(checker, tail)
                if checker.ended or not events:
                    break
            result = checker.finalize()
            current().absorb(checker.telemetry.collect())
    return result, _records(telemetry), replayed


class TestRoundTrip:
    def test_resume_matches_uninterrupted_byte_for_byte(self, tmp_path):
        events = _workload(seed=11)
        log = tmp_path / "log.jsonl"
        _write_log(log, events)
        ref_result, ref_records, ref_replayed = _watch(str(log))
        assert ref_replayed == len(events)

        # watch half the log, snapshotting as we go
        half = tmp_path / "half.jsonl"
        _write_log(half, events[: len(events) // 2])
        snap = tmp_path / "snap.json"
        telemetry = Telemetry(stream="main")
        with using(telemetry):
            with telemetry.span("cli.command", command="watch"):
                checker = IncrementalChecker()
                tail = EventLogTail(str(half))
                writer = SnapshotWriter(
                    str(snap), telemetry=checker.telemetry
                )
                for tailed in tail.poll():
                    checker.ingest(tailed.event)
                writer.maybe(checker, tail)
        assert writer.written == 1

        # the snapshot binds to the half log's prefix; the full log
        # shares that prefix, so resume over it replays the suffix only
        _write_log(half, events)
        result, records, replayed = _watch(
            str(half), resume_from=str(snap)
        )
        assert replayed == len(events) - len(events) // 2
        assert result.verdict.rejected == ref_result.verdict.rejected
        assert result.reduction is not None
        assert ref_result.reduction is not None
        assert result.reduction.failure == ref_result.reduction.failure
        assert canonical_dumps(records) == canonical_dumps(ref_records)

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(seed=st.integers(0, 7), frac=st.floats(0.05, 0.95))
    def test_any_prefix_snapshot_resumes_identically(
        self, tmp_path, seed, frac
    ):
        """The headline property: snapshot after an arbitrary prefix,
        resume over the suffix, and verdict + witness + canonical
        telemetry are indistinguishable from never having stopped."""
        events = _workload(seed=seed)
        cut = max(1, min(len(events) - 1, int(len(events) * frac)))
        log = tmp_path / f"log-{seed}-{cut}.jsonl"
        _write_log(log, events)
        ref_result, ref_records, _ = _watch(str(log))

        prefix = tmp_path / f"pre-{seed}-{cut}.jsonl"
        _write_log(prefix, events[:cut])
        checker = IncrementalChecker()
        tail = EventLogTail(str(prefix))
        for tailed in tail.poll():
            checker.ingest(tailed.event)
        snap = tmp_path / f"snap-{seed}-{cut}.json"
        write_snapshot(str(snap), checker, tail)

        _write_log(prefix, events)
        result, records, replayed = _watch(
            str(prefix), resume_from=str(snap)
        )
        assert replayed == len(events) - cut
        assert result.verdict.rejected == ref_result.verdict.rejected
        assert result.reduction.failure == ref_result.reduction.failure
        assert canonical_dumps(records) == canonical_dumps(ref_records)

    def test_restored_checker_is_internally_identical(self, tmp_path):
        """The codec stores relations row-for-row: the restored
        checker's own snapshot document is byte-identical to the
        original's (same state, same fingerprint)."""
        events = _workload(seed=3)
        log = tmp_path / "log.jsonl"
        _write_log(log, events[: len(events) // 2])
        checker = IncrementalChecker()
        tail = EventLogTail(str(log))
        for tailed in tail.poll():
            checker.ingest(tailed.event)
        document = write_snapshot(str(tmp_path / "s.json"), checker, tail)

        restored = restore_checker(document)
        again = restore_tail(document, str(log))
        from repro.stream.snapshot import snapshot_document

        assert snapshot_document(restored, again) == document


class TestTrust:
    def _snapshot(self, tmp_path):
        events = _workload(seed=5)
        log = tmp_path / "log.jsonl"
        _write_log(log, events[:50])
        checker = IncrementalChecker()
        tail = EventLogTail(str(log))
        for tailed in tail.poll():
            checker.ingest(tailed.event)
        snap = tmp_path / "snap.json"
        write_snapshot(str(snap), checker, tail)
        return snap, log, events

    def test_missing_and_torn_snapshots_are_ctx503(self, tmp_path):
        with pytest.raises(SnapshotError) as err:
            read_snapshot(str(tmp_path / "absent.json"))
        assert err.value.diagnostic.code == "CTX503"
        torn = tmp_path / "torn.json"
        torn.write_text('{"v": 1, "log"')
        with pytest.raises(SnapshotError, match="unreadable") as err:
            read_snapshot(str(torn))
        assert err.value.diagnostic.code == "CTX503"

    def test_bit_flip_breaks_the_self_digest(self, tmp_path):
        snap, _, _ = self._snapshot(tmp_path)
        document = json.loads(snap.read_text())
        document["log"]["line"] += 1  # the flip
        snap.write_text(json.dumps(document))
        with pytest.raises(SnapshotError, match="self-digest") as err:
            read_snapshot(str(snap))
        assert err.value.diagnostic.code == "CTX503"

    def test_wrong_schema_version_is_refused(self, tmp_path):
        snap, _, _ = self._snapshot(tmp_path)
        document = json.loads(snap.read_text())
        assert document["v"] == SNAPSHOT_VERSION
        document["v"] = SNAPSHOT_VERSION + 1
        snap.write_text(json.dumps(document))
        with pytest.raises(SnapshotError, match="version"):
            read_snapshot(str(snap))

    def test_rewritten_log_fails_the_fingerprint(self, tmp_path):
        """CTX501: the log's consumed prefix no longer hashes to the
        snapshot's fingerprint — a diverged log must not be resumed."""
        snap, log, events = self._snapshot(tmp_path)
        document = read_snapshot(str(snap))
        _write_log(log, list(reversed(events[:50])))
        with pytest.raises(SnapshotError, match="diverged") as err:
            verify_snapshot(document, str(log))
        assert err.value.diagnostic.code == "CTX501"

    def test_truncated_log_fails_the_fingerprint(self, tmp_path):
        snap, log, events = self._snapshot(tmp_path)
        document = read_snapshot(str(snap))
        _write_log(log, events[:10])
        with pytest.raises(SnapshotError, match="shorter") as err:
            verify_snapshot(document, str(log))
        assert err.value.diagnostic.code == "CTX501"

    def test_matching_log_verifies_silently(self, tmp_path):
        snap, log, _ = self._snapshot(tmp_path)
        verify_snapshot(read_snapshot(str(snap)), str(log))


class TestWriterCadence:
    def test_every_n_skips_intermediate_writes(self, tmp_path):
        events = _workload(seed=1)
        log = tmp_path / "log.jsonl"
        snap = tmp_path / "snap.json"
        writer = SnapshotWriter(str(snap), every=40)
        checker = IncrementalChecker()
        tail = EventLogTail(str(log))
        with open(log, "w", encoding="utf-8") as handle:
            for event in events[:100]:
                handle.write(dumps_event(event) + "\n")
                handle.flush()
                for tailed in tail.poll():
                    checker.ingest(tailed.event)
                writer.maybe(checker, tail)
        assert writer.written == 100 // 40
        assert writer.last_document is not None

    def test_zero_cadence_is_refused(self, tmp_path):
        with pytest.raises(ValueError, match="cadence"):
            SnapshotWriter(str(tmp_path / "s.json"), every=0)
