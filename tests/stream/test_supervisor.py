"""Supervised watch: restart-from-snapshot through injected failures,
poison-event quarantine with offset attribution, invalid-snapshot
fallback, hang detection, and seeded-backoff determinism."""

import pytest

from repro.core.reduction import reduce_to_roots
from repro.io.eventlog import dumps_event, events_from_recorded
from repro.stream import StreamSupervisor
from repro.workloads.generator import WorkloadConfig, generate
from repro.workloads.topologies import stack_topology


def _workload(seed=9):
    recorded = generate(
        stack_topology(3),
        WorkloadConfig(seed=seed, roots=3, conflict_probability=0.2),
    )
    return recorded, events_from_recorded(recorded)


def _lines(events):
    return [(dumps_event(e) + "\n").encode("utf-8") for e in events]


def _supervisor(log, snap, **kwargs):
    kwargs.setdefault("follow", False)
    kwargs.setdefault("quarantine_after", 2)
    kwargs.setdefault("backoff_base", 0.0)
    kwargs.setdefault("sleep", lambda _s: None)
    return StreamSupervisor(str(log), snapshot_path=str(snap), **kwargs)


def _metas(supervisor, name):
    return [
        dict(e.fields)
        for e in supervisor.telemetry.collect()
        if e.kind == "meta" and e.name == name
    ]


class TestCleanRun:
    def test_complete_log_certifies_in_one_attempt(self, tmp_path):
        recorded, events = _workload()
        log = tmp_path / "log.jsonl"
        log.write_bytes(b"".join(_lines(events)))
        watch = _supervisor(log, tmp_path / "snap.json").run()
        assert watch.attempts == 1 and not watch.quarantined
        assert watch.result is not None
        batch = reduce_to_roots(recorded.system)
        assert watch.result.verdict.rejected == (batch.failure is not None)
        assert watch.result.reduction.failure == batch.failure


class TestQuarantine:
    def test_poison_line_is_quarantined_with_attribution(self, tmp_path):
        """A deterministic failure lands on the same offset every
        restart; after ``quarantine_after`` failures there the
        supervisor stops and names the poison line (CTX504)."""
        _, events = _workload()
        lines = _lines(events)
        poison_at = len(lines) // 2
        poisoned = (
            lines[:poison_at] + [b"%not json%\n"] + lines[poison_at:]
        )
        log = tmp_path / "log.jsonl"
        log.write_bytes(b"".join(poisoned))
        supervisor = _supervisor(log, tmp_path / "snap.json")
        watch = supervisor.run()
        assert watch.quarantined and watch.result is None
        assert watch.attempts == 2
        poison = watch.poison
        assert poison.failures == 2
        assert poison.diagnostic.code == "CTX504"
        # attribution: the failure offset is the bytes consumed up to
        # (not including) the poison line, and the reported line is
        # the poison line's 1-based number
        assert poison.offset == sum(len(l) for l in lines[:poison_at])
        assert poison.line == poison_at + 1
        assert _metas(supervisor, "stream.quarantine") != []

    def test_restart_resumes_from_snapshot_not_offset_zero(
        self, tmp_path
    ):
        """Attempts after a snapshot exists bootstrap from it —
        restored events > 0, never a re-read from offset 0."""
        _, events = _workload()
        lines = _lines(events)
        log = tmp_path / "log.jsonl"
        snap = tmp_path / "snap.json"
        # a clean watch over the prefix leaves a snapshot behind
        log.write_bytes(b"".join(lines[:-20]))
        _supervisor(log, snap).run()
        # the log then grows a poison line
        log.write_bytes(
            b"".join(lines[:-20] + [b"%not json%\n"] + lines[-20:])
        )
        supervisor = _supervisor(log, snap)
        watch = supervisor.run()
        assert watch.quarantined
        recovers = _metas(supervisor, "stream.recover")
        assert recovers, "no stream.recover meta was emitted"
        assert all(r["mode"] == "snapshot" for r in recovers)
        assert recovers[0]["events"] > 0
        assert recovers[0]["offset"] > 0

    def test_repair_then_resume_certifies(self, tmp_path):
        """The quarantine fix-hint workflow: excise the poison line,
        re-run the supervisor, and it resumes from the snapshot and
        certifies the same verdict as an uninterrupted batch check."""
        recorded, events = _workload()
        lines = _lines(events)
        poison_at = len(lines) * 3 // 4
        log = tmp_path / "log.jsonl"
        snap = tmp_path / "snap.json"
        # clean prefix first (seeds the snapshot), then the poison
        log.write_bytes(b"".join(lines[:poison_at]))
        _supervisor(log, snap).run()
        log.write_bytes(
            b"".join(lines[:poison_at] + [b"%x%\n"] + lines[poison_at:])
        )
        first = _supervisor(log, snap).run()
        assert first.quarantined

        log.write_bytes(b"".join(lines))  # the repair
        second = _supervisor(log, snap)
        watch = second.run()
        assert not watch.quarantined and watch.attempts == 1
        recovers = _metas(second, "stream.recover")
        assert recovers and recovers[0]["mode"] == "snapshot"
        batch = reduce_to_roots(recorded.system)
        assert watch.result.reduction.failure == batch.failure

    def test_max_restarts_reraises_moving_failures(self, tmp_path):
        """Failures that keep moving are environmental, not poison:
        past ``max_restarts`` the last error propagates."""
        from repro.exceptions import ParseError

        _, events = _workload()
        lines = _lines(events)
        log = tmp_path / "log.jsonl"
        log.write_bytes(b"".join(lines[:10] + [b"%x%\n"]))
        snap = tmp_path / "snap.json"

        # every restart repairs the current poison and plants a new
        # one a line later, so the offset never repeats
        state = {"n": 10}

        def advance(_s):
            state["n"] += 1
            log.write_bytes(
                b"".join(lines[: state["n"]] + [b"%x%\n"])
            )

        supervisor = _supervisor(
            log,
            snap,
            quarantine_after=99,
            max_restarts=3,
            sleep=advance,
        )
        with pytest.raises(ParseError):
            supervisor.run()


class TestInvalidSnapshotFallback:
    def test_rotated_log_falls_back_to_full_reread(self, tmp_path):
        """A snapshot whose fingerprint the log no longer matches
        (CTX501) is skipped — the attempt re-reads from offset 0 and
        still certifies, surfacing the fallback in telemetry."""
        recorded, events = _workload()
        lines = _lines(events)
        log = tmp_path / "log.jsonl"
        snap = tmp_path / "snap.json"
        log.write_bytes(b"".join(lines[: len(lines) // 2]))
        # abandoned watch over the half log leaves a snapshot behind
        first = _supervisor(log, snap, follow=False)
        first.run()
        assert snap.exists()

        # the log is rotated: same events, rewritten with the first
        # two lines swapped, so the snapshotted prefix bytes differ
        diverged = [lines[1], lines[0]] + lines[2:]
        log.write_bytes(b"".join(diverged))

        second = _supervisor(log, snap, follow=False, max_restarts=0,
                             quarantine_after=1)
        # the swapped order may legitimately fail to certify; the
        # point here is the bootstrap path, so tolerate either outcome
        try:
            second.run()
        except Exception:
            pass
        invalid = _metas(second, "stream.snapshot.invalid")
        assert invalid and invalid[0]["code"] == "CTX501"
        recovers = _metas(second, "stream.recover")
        assert recovers and recovers[0]["mode"] == "full"
        assert recovers[0]["offset"] == 0 and recovers[0]["events"] == 0

    def test_corrupt_snapshot_falls_back_to_full_reread(self, tmp_path):
        recorded, events = _workload()
        log = tmp_path / "log.jsonl"
        log.write_bytes(b"".join(_lines(events)))
        snap = tmp_path / "snap.json"
        snap.write_text("{torn")
        supervisor = _supervisor(log, snap, follow=False)
        watch = supervisor.run()
        assert watch.attempts == 1 and not watch.quarantined
        invalid = _metas(supervisor, "stream.snapshot.invalid")
        assert invalid and invalid[0]["code"] == "CTX503"
        batch = reduce_to_roots(recorded.system)
        assert watch.result.reduction.failure == batch.failure


class TestHangDetection:
    def test_hung_attempt_is_timed_out_and_quarantined(self, tmp_path):
        """A watch that stops making progress (log never ends, writer
        gone) trips the SIGALRM attempt timeout; the timeout is
        supervised like any failure and quarantines at the stalled
        offset."""
        _, events = _workload()
        lines = _lines(events)
        log = tmp_path / "log.jsonl"
        log.write_bytes(b"".join(lines[:-1]))  # no end record: stalls
        supervisor = StreamSupervisor(
            str(log),
            snapshot_path=str(tmp_path / "snap.json"),
            follow=True,
            interval=0.01,
            attempt_timeout=0.3,
            quarantine_after=2,
            backoff_base=0.0,
        )
        watch = supervisor.run()
        assert watch.quarantined
        assert "wall-clock budget" in watch.poison.error
        assert watch.poison.offset == sum(len(l) for l in lines[:-1])


class TestDeterminism:
    def _delays(self, tmp_path, tag, seed):
        _, events = _workload()
        lines = _lines(events)
        log = tmp_path / f"log-{tag}.jsonl"
        log.write_bytes(b"".join(lines[:30] + [b"%x%\n"] + lines[30:]))
        delays = []
        supervisor = _supervisor(
            log,
            tmp_path / f"snap-{tag}.json",
            quarantine_after=3,
            backoff_base=0.01,
            seed=seed,
            sleep=delays.append,
        )
        supervisor.run()
        return delays

    def test_same_seed_same_backoff_schedule(self, tmp_path):
        a = self._delays(tmp_path, "a", seed=42)
        b = self._delays(tmp_path, "b", seed=42)
        assert a == b and len(a) == 2  # two restarts before quarantine

    def test_different_seed_different_jitter(self, tmp_path):
        a = self._delays(tmp_path, "c", seed=1)
        b = self._delays(tmp_path, "d", seed=2)
        assert a != b


def test_quarantine_after_must_be_positive(tmp_path):
    with pytest.raises(ValueError, match="quarantine_after"):
        StreamSupervisor(str(tmp_path / "l"), quarantine_after=0)
