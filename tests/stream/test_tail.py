"""Tailing a growing event log: torn-tail tolerance and offset resume."""

import pytest

from repro.exceptions import ParseError
from repro.io import load
from repro.io.eventlog import dumps_event, events_from_recorded
from repro.stream import EventLogTail

FIXTURE = "tests/fixtures/unsafe_lost_update.json"


def _lines():
    return [
        dumps_event(e) + "\n"
        for e in events_from_recorded(load(FIXTURE))
    ]


def test_missing_file_polls_empty(tmp_path):
    tail = EventLogTail(tmp_path / "absent.jsonl")
    assert tail.poll() == []
    assert tail.offset == 0


def test_incremental_polls_see_every_event(tmp_path):
    path = tmp_path / "log.jsonl"
    lines = _lines()
    tail = EventLogTail(path)
    seen = []
    with open(path, "w") as handle:
        for line in lines:
            handle.write(line)
            handle.flush()
            seen.extend(t.event for t in tail.poll())
    assert seen == events_from_recorded(load(FIXTURE))
    assert tail.offset == path.stat().st_size


def test_torn_tail_waits_then_completes(tmp_path):
    """A partially written final line is *not* an error: the tail
    holds position and picks the event up once the newline lands."""
    path = tmp_path / "log.jsonl"
    first, second = _lines()[:2]
    path.write_text(first + second[: len(second) // 2])
    tail = EventLogTail(path)
    got = tail.poll()
    assert [t.line for t in got] == [1]  # only the complete line
    offset_before = tail.offset
    assert offset_before == len(first.encode())
    # the writer finishes the line: the next poll returns it
    path.write_text(first + second)
    [t] = tail.poll()
    assert t.event == events_from_recorded(load(FIXTURE))[1]
    assert t.offset == len((first + second).encode())
    # and a quiet log polls empty without moving
    assert tail.poll() == []
    assert tail.offset == t.offset


def test_complete_malformed_line_raises(tmp_path):
    """Corruption *before* the tail (a complete line that is not an
    event) is a real error, not a torn write."""
    path = tmp_path / "log.jsonl"
    path.write_text(_lines()[0] + "{broken\n" + _lines()[1])
    tail = EventLogTail(path)
    with pytest.raises(ParseError):
        tail.poll()


def test_blank_lines_are_skipped(tmp_path):
    path = tmp_path / "log.jsonl"
    first, second = _lines()[:2]
    path.write_text(first + "\n\n" + second)
    tail = EventLogTail(path)
    assert [t.line for t in tail.poll()] == [1, 4]


def test_offsets_allow_resume(tmp_path):
    """A second tail seeded at a reported offset replays exactly the
    suffix — the ``--from-offset`` resume contract."""
    path = tmp_path / "log.jsonl"
    lines = _lines()
    path.write_text("".join(lines))
    tail = EventLogTail(path)
    tailed = tail.poll()
    cut = len(tailed) // 2
    resumed = EventLogTail(path)
    resumed.offset = tailed[cut - 1].offset
    assert [t.event for t in resumed.poll()] == [
        t.event for t in tailed[cut:]
    ]
