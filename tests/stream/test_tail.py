"""Tailing a growing event log: torn-tail tolerance and offset resume."""

import pytest

from repro.exceptions import ParseError
from repro.io import load
from repro.io.eventlog import dumps_event, events_from_recorded
from repro.stream import EventLogTail

FIXTURE = "tests/fixtures/unsafe_lost_update.json"


def _lines():
    return [
        dumps_event(e) + "\n"
        for e in events_from_recorded(load(FIXTURE))
    ]


def test_missing_file_polls_empty(tmp_path):
    tail = EventLogTail(tmp_path / "absent.jsonl")
    assert tail.poll() == []
    assert tail.offset == 0


def test_incremental_polls_see_every_event(tmp_path):
    path = tmp_path / "log.jsonl"
    lines = _lines()
    tail = EventLogTail(path)
    seen = []
    with open(path, "w") as handle:
        for line in lines:
            handle.write(line)
            handle.flush()
            seen.extend(t.event for t in tail.poll())
    assert seen == events_from_recorded(load(FIXTURE))
    assert tail.offset == path.stat().st_size


def test_torn_tail_waits_then_completes(tmp_path):
    """A partially written final line is *not* an error: the tail
    holds position and picks the event up once the newline lands."""
    path = tmp_path / "log.jsonl"
    first, second = _lines()[:2]
    path.write_text(first + second[: len(second) // 2])
    tail = EventLogTail(path)
    got = tail.poll()
    assert [t.line for t in got] == [1]  # only the complete line
    offset_before = tail.offset
    assert offset_before == len(first.encode())
    # the writer finishes the line: the next poll returns it
    path.write_text(first + second)
    [t] = tail.poll()
    assert t.event == events_from_recorded(load(FIXTURE))[1]
    assert t.offset == len((first + second).encode())
    # and a quiet log polls empty without moving
    assert tail.poll() == []
    assert tail.offset == t.offset


def test_complete_malformed_line_raises(tmp_path):
    """Corruption *before* the tail (a complete line that is not an
    event) is a real error, not a torn write — attributed to the bad
    line's exact byte offset and line number, with the tail's own
    position left uncommitted."""
    path = tmp_path / "log.jsonl"
    first = _lines()[0]
    path.write_text(first + "{broken\n" + _lines()[1])
    tail = EventLogTail(path)
    with pytest.raises(ParseError) as err:
        tail.poll()
    assert err.value.offset == len(first.encode())
    assert err.value.line == 2
    assert tail.offset == 0 and tail.line == 0


def test_truncated_log_raises_ctx502(tmp_path):
    """A file now smaller than the consumed offset means rotation or
    truncation underneath the tailer: CTX502, never a silent 'no new
    events'."""
    from repro.exceptions import EventLogTruncatedError

    path = tmp_path / "log.jsonl"
    lines = _lines()
    path.write_text("".join(lines))
    tail = EventLogTail(path)
    tail.poll()
    path.write_text("".join(lines[:2]))  # copytruncate-style rotation
    with pytest.raises(EventLogTruncatedError) as err:
        tail.poll()
    assert err.value.diagnostic.code == "CTX502"
    assert err.value.offset == sum(len(l.encode()) for l in lines)
    assert err.value.size == sum(len(l.encode()) for l in lines[:2])


def test_restore_repositions_exactly(tmp_path):
    """The snapshot resume path: a fresh tailer restored at a recorded
    (offset, line) replays exactly the suffix with correct line
    numbers."""
    path = tmp_path / "log.jsonl"
    lines = _lines()
    path.write_text("".join(lines))
    tail = EventLogTail(path)
    consumed = tail.poll()
    cut = len(consumed) // 2
    resumed = EventLogTail(path)
    resumed.restore(consumed[cut - 1].offset, consumed[cut - 1].line)
    assert resumed.line == consumed[cut - 1].line
    suffix = resumed.poll()
    assert [(t.event, t.offset, t.line) for t in suffix] == [
        (t.event, t.offset, t.line) for t in consumed[cut:]
    ]
    with pytest.raises(ValueError):
        resumed.restore(-1, 0)


def test_blank_lines_are_skipped(tmp_path):
    path = tmp_path / "log.jsonl"
    first, second = _lines()[:2]
    path.write_text(first + "\n\n" + second)
    tail = EventLogTail(path)
    assert [t.line for t in tail.poll()] == [1, 4]


def test_offsets_allow_resume(tmp_path):
    """A second tail seeded at a reported offset replays exactly the
    suffix — the ``--from-offset`` resume contract."""
    path = tmp_path / "log.jsonl"
    lines = _lines()
    path.write_text("".join(lines))
    tail = EventLogTail(path)
    tailed = tail.poll()
    cut = len(tailed) // 2
    resumed = EventLogTail(path)
    resumed.offset = tailed[cut - 1].offset
    assert [t.event for t in resumed.poll()] == [
        t.event for t in tailed[cut:]
    ]
