"""Incremental assembly is invisible: after every commit of every
workload in the 500-system sweep, the persistent-builder path
(:meth:`~repro.stream.StreamAssembler.build_incremental`) serializes
byte-identically to a from-scratch replay
(:meth:`~repro.stream.StreamAssembler.build`), and in-order logs never
pay a rebuild."""

import pytest

from repro.io.eventlog import events_from_recorded
from repro.io.text_format import dumps
from repro.stream import StreamAssembler
from repro.workloads.generator import WorkloadConfig, generate
from repro.workloads.topologies import (
    fork_topology,
    join_topology,
    stack_topology,
    tree_topology,
)

_SPECS = [
    stack_topology(2),
    stack_topology(3),
    fork_topology(3),
    join_topology(2),
    tree_topology(2, 2),
]


@pytest.mark.parametrize("spec", _SPECS, ids=lambda s: s.name)
def test_incremental_build_matches_full_replay(spec):
    """The sweep mirrors the streaming-equivalence population: 100
    seeds per topology, every committed prefix compared byte-for-byte
    between the incremental and the full build."""
    compared = 0
    for seed in range(100):
        config = WorkloadConfig(
            seed=seed,
            roots=3,
            conflict_probability=(seed % 4) * 0.1,
            intra_order_probability=0.2 if seed % 5 == 0 else 0.0,
        )
        recorded = generate(spec, config)
        assembler = StreamAssembler()
        for event in events_from_recorded(recorded):
            delta = assembler.apply(event)
            if delta is None:
                continue
            incremental = assembler.build_incremental()
            full = assembler.build()
            assert incremental is not None and full is not None
            assert dumps(incremental) == dumps(full), (spec.name, seed)
            compared += 1
        # event logs list commits in log order, so the persistent
        # builder only rebuilds where roots *share* a schedule and
        # the declaration order genuinely disagrees with the commit
        # order (join topologies; at most one rebuild per run)
        limit = 1 if "join" in spec.name else 0
        assert assembler.rebuilds <= limit, (spec.name, seed)
    assert compared > 100  # the sweep really exercised the comparison


def test_out_of_order_commit_pays_one_rebuild():
    """A commit arriving for an *earlier* transaction than the builder
    already applied for that schedule forces exactly one full rebuild
    (the watermark guard), after which increments resume."""
    recorded = generate(
        stack_topology(2),
        WorkloadConfig(seed=0, roots=3, conflict_probability=0.2),
    )
    events = events_from_recorded(recorded)
    commits = [
        i for i, e in enumerate(events) if e.kind == "commit"
    ]
    if len(commits) < 2:
        pytest.skip("workload committed fewer than two roots")
    # swap the last two commit events (with their preceding blocks
    # intact this still assembles: roots are independent)
    a, b = commits[-2], commits[-1]
    events[a], events[b] = events[b], events[a]
    assembler = StreamAssembler()
    last = None
    for event in events:
        if assembler.apply(event) is not None:
            last = assembler.build_incremental()
    assert last is not None
    assert dumps(last) == dumps(assembler.build())
    assert assembler.rebuilds >= 1
