"""The streaming acceptance property: a finished stream through
:class:`~repro.stream.IncrementalChecker` is indistinguishable from a
batch :func:`~repro.core.reduction.reduce_to_roots` — same verdict,
same failure witness, byte-identical canonical telemetry.

The sweep mirrors the 500-system population of the static-safety
agreement test (5 topologies × 100 seeds) so the two acceptance gates
cover the same workloads.
"""

import pytest

from repro.core.reduction import reduce_to_roots
from repro.io.eventlog import events_from_recorded
from repro.obs import canonical_dumps
from repro.obs.sink import sort_events, to_record
from repro.obs.telemetry import Telemetry, current, using
from repro.stream import IncrementalChecker
from repro.workloads.generator import WorkloadConfig, generate
from repro.workloads.topologies import (
    fork_topology,
    join_topology,
    stack_topology,
    tree_topology,
)

_SPECS = [
    stack_topology(2),
    stack_topology(3),
    fork_topology(3),
    join_topology(2),
    tree_topology(2, 2),
]


def _records(telemetry):
    return [to_record(e) for e in sort_events(telemetry.collect())]


def _batch_run(system):
    """A batch ``check``-shaped run: ambient main-stream telemetry
    wrapping the reduction in the CLI's command span."""
    telemetry = Telemetry(stream="main")
    with using(telemetry):
        with telemetry.span("cli.command", command="check"):
            result = reduce_to_roots(system)
    return result, _records(telemetry)


def _stream_run(events):
    """A ``watch``-shaped run: per-event work on the checker's own
    watch stream, batch certification under the ambient main stream,
    watch records absorbed at the end — exactly ``cmd_watch``."""
    telemetry = Telemetry(stream="main")
    with using(telemetry):
        with telemetry.span("cli.command", command="watch"):
            checker = IncrementalChecker()
            checker.ingest_all(events)
            result = checker.finalize()
            current().absorb(checker.telemetry.collect())
    return result, _records(telemetry)


@pytest.mark.parametrize("spec", _SPECS, ids=lambda s: s.name)
def test_stream_equals_batch_on_generated_systems(spec):
    """100 seeds per topology (500 systems over the suite): verdict,
    failure witness, and canonical telemetry all agree between the
    streamed and the batch check, and both outcomes are exercised."""
    rejected = 0
    for seed in range(100):
        config = WorkloadConfig(
            seed=seed,
            roots=3,
            conflict_probability=(seed % 4) * 0.1,
            intra_order_probability=0.2 if seed % 5 == 0 else 0.0,
        )
        recorded = generate(spec, config)
        events = events_from_recorded(recorded)

        batch, batch_records = _batch_run(recorded.system)
        stream, stream_records = _stream_run(events)

        # verdict agreement (finalize hard-asserts this too; pin it
        # here so a regression fails with context, not a StreamError)
        assert stream.verdict.rejected == (batch.failure is not None), (
            spec.name,
            seed,
        )
        # the certified witness is the batch witness, exactly
        assert stream.reduction is not None
        assert stream.reduction.failure == batch.failure, (spec.name, seed)
        # canonical telemetry byte-identity
        assert canonical_dumps(stream_records) == canonical_dumps(
            batch_records
        ), (spec.name, seed)
        if batch.failure is not None:
            rejected += 1
    assert rejected > 0, f"no {spec.name} workload was ever rejected"
    assert rejected < 100, f"every {spec.name} workload was rejected"
