"""The log-chaos harness holds its own contract: every scenario ends
with the supervised watch certifying byte-identically to the batch
check (the harness hard-asserts internally; these tests pin the
recovery *shape* each fault family must produce)."""

import pytest

from repro.exceptions import StreamError
from repro.stream.chaos import SCENARIOS, run_chaos_suite


def test_scenario_names_are_stable():
    assert SCENARIOS == (
        "kill", "torn", "corrupt", "duplicate", "reorder", "rotate"
    )
    with pytest.raises(StreamError, match="unknown chaos scenario"):
        run_chaos_suite(scenarios=["nope"])


def test_kill_resumes_from_snapshot_with_partial_replay(tmp_path):
    [outcome] = run_chaos_suite(scenarios=["kill"])
    assert outcome.status == "REJECTED"
    assert outcome.quarantines == 0
    assert "snapshot" in outcome.recover_modes
    assert 0 < outcome.replayed < outcome.total_events


def test_corrupt_line_is_quarantined_then_repaired(tmp_path):
    [outcome] = run_chaos_suite(scenarios=["corrupt"])
    assert outcome.quarantines == 1
    assert "CTX504" in outcome.codes
    assert outcome.status == "REJECTED"


def test_rotation_falls_back_to_full_reread(tmp_path):
    [outcome] = run_chaos_suite(scenarios=["rotate"])
    assert "full" in outcome.recover_modes
    assert "CTX501" in outcome.codes
    assert outcome.status == "REJECTED"
