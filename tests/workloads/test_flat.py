"""Unit tests for flat workload generation."""

import pytest

from repro.criteria.classical import is_conflict_serializable
from repro.exceptions import WorkloadError
from repro.workloads.flat import (
    FlatWorkloadConfig,
    flat_history_batch,
    random_flat_history,
)


class TestFlatGeneration:
    def test_shape(self):
        h = random_flat_history(
            FlatWorkloadConfig(transactions=3, ops_per_transaction=4)
        )
        assert len(h) == 12
        assert len(h.transactions) == 3

    def test_serial_flag(self):
        h = random_flat_history(FlatWorkloadConfig(serial=True))
        assert h.is_serial()
        assert is_conflict_serializable(h)

    def test_deterministic(self):
        a = random_flat_history(FlatWorkloadConfig(seed=3))
        b = random_flat_history(FlatWorkloadConfig(seed=3))
        assert str(a) == str(b)

    def test_program_order_preserved_per_transaction(self):
        cfg = FlatWorkloadConfig(seed=1, transactions=3, ops_per_transaction=5)
        serial = random_flat_history(
            FlatWorkloadConfig(seed=1, transactions=3, ops_per_transaction=5, serial=True)
        )
        interleaved = random_flat_history(cfg)
        for txn in interleaved.transactions:
            assert interleaved.operations_of(txn) == serial.operations_of(txn)

    def test_skew_concentrates_items(self):
        hot = random_flat_history(
            FlatWorkloadConfig(seed=0, transactions=8, ops_per_transaction=8, item_skew=2.5)
        )
        cold = random_flat_history(
            FlatWorkloadConfig(seed=0, transactions=8, ops_per_transaction=8, item_skew=0.0)
        )
        assert len(hot.items) <= len(cold.items)

    def test_bad_config(self):
        with pytest.raises(WorkloadError):
            random_flat_history(FlatWorkloadConfig(transactions=0))

    def test_batch(self):
        batch = flat_history_batch(FlatWorkloadConfig(seed=10), 4)
        assert len(batch) == 4
        assert str(batch[0]) != str(batch[1])
