"""Unit tests for topology descriptors."""

import pytest

from repro.exceptions import WorkloadError
from repro.workloads.topologies import (
    TopologySpec,
    fork_topology,
    join_topology,
    random_dag_topology,
    stack_topology,
    tree_topology,
)


class TestStack:
    def test_shape(self):
        spec = stack_topology(3)
        assert spec.order == 3
        assert spec.levels == {"L3": 3, "L2": 2, "L1": 1}
        assert spec.invokes["L3"] == ["L2"]
        assert spec.invokes["L1"] == []
        assert spec.root_schedules == ["L3"]

    def test_depth_one(self):
        spec = stack_topology(1)
        assert spec.order == 1
        assert spec.invokes == {"L1": []}

    def test_bad_depth(self):
        with pytest.raises(WorkloadError):
            stack_topology(0)


class TestForkJoin:
    def test_fork_shape(self):
        spec = fork_topology(3)
        assert spec.levels["F"] == 2
        assert set(spec.invokes["F"]) == {"B1", "B2", "B3"}
        assert spec.root_schedules == ["F"]

    def test_join_shape(self):
        spec = join_topology(2)
        assert spec.levels["J"] == 1
        assert spec.invokes["C1"] == ["J"]
        assert set(spec.root_schedules) == {"C1", "C2"}

    def test_bad_counts(self):
        with pytest.raises(WorkloadError):
            fork_topology(0)
        with pytest.raises(WorkloadError):
            join_topology(0)


class TestTree:
    def test_shape(self):
        spec = tree_topology(3, 2)
        assert spec.order == 3
        # 1 + 2 + 4 schedules
        assert len(spec.schedule_names) == 7
        leaves = [s for s, t in spec.invokes.items() if not t]
        assert len(leaves) == 4

    def test_bad_params(self):
        with pytest.raises(WorkloadError):
            tree_topology(0, 2)


class TestDag:
    def test_shape_and_determinism(self):
        a = random_dag_topology(3, 2, seed=7)
        b = random_dag_topology(3, 2, seed=7)
        assert a.levels == b.levels
        assert a.invokes == b.invokes
        assert a.order == 3

    def test_extra_roots(self):
        spec = random_dag_topology(3, 2, seed=1, extra_roots=2)
        lower_roots = [
            s for s in spec.root_schedules if spec.levels[s] < spec.order
        ]
        assert len(lower_roots) == 2

    def test_edges_point_downward(self):
        spec = random_dag_topology(4, 3, seed=2)
        spec.validate()
        for caller, callees in spec.invokes.items():
            for callee in callees:
                assert spec.levels[callee] < spec.levels[caller]

    def test_validation_rejects_upward_edges(self):
        bad = TopologySpec(
            name="bad",
            levels={"A": 1, "B": 2},
            invokes={"A": ["B"], "B": []},
            root_schedules=["B"],
        )
        with pytest.raises(WorkloadError):
            bad.validate()

    def test_validation_requires_roots(self):
        bad = TopologySpec(
            name="bad", levels={"A": 1}, invokes={"A": []}, root_schedules=[]
        )
        with pytest.raises(WorkloadError):
            bad.validate()
