"""Unit + property tests for the random execution generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.correctness import is_composite_correct
from repro.exceptions import WorkloadError
from repro.workloads.generator import WorkloadConfig, generate, generate_batch
from repro.workloads.topologies import (
    fork_topology,
    join_topology,
    random_dag_topology,
    stack_topology,
    tree_topology,
)

ALL_SPECS = [
    stack_topology(2),
    stack_topology(3),
    fork_topology(3),
    join_topology(3),
    tree_topology(3, 2),
    random_dag_topology(3, 2, seed=3),
]


class TestConfig:
    def test_bad_layout(self):
        with pytest.raises(WorkloadError):
            WorkloadConfig(layout="zigzag")

    def test_bad_ops_range(self):
        with pytest.raises(WorkloadError):
            WorkloadConfig(ops_per_transaction=(0, 2))
        with pytest.raises(WorkloadError):
            WorkloadConfig(ops_per_transaction=(3, 2))


class TestGeneration:
    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.name)
    def test_generated_systems_are_well_formed(self, spec):
        # build() runs full Def.-3/Def.-4 validation: no exception = pass.
        for seed in range(5):
            rec = generate(
                spec,
                WorkloadConfig(
                    seed=seed,
                    conflict_probability=0.3,
                    intra_order_probability=0.3,
                    leaf_probability=0.2 if "dag" in spec.name else 0.0,
                ),
            )
            assert rec.system.order <= spec.order

    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.name)
    def test_serial_layout_always_correct(self, spec):
        for seed in range(5):
            rec = generate(
                spec,
                WorkloadConfig(
                    seed=seed, conflict_probability=0.5, layout="serial"
                ),
            )
            assert is_composite_correct(rec.system)
            assert rec.is_serial_layout()

    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.name)
    def test_perturbed_layout_preserves_correctness(self, spec):
        for seed in range(5):
            rec = generate(
                spec,
                WorkloadConfig(
                    seed=seed,
                    conflict_probability=0.5,
                    layout="perturbed",
                    perturbation_swaps=12,
                ),
            )
            assert is_composite_correct(rec.system)

    def test_random_layout_produces_both_verdicts(self):
        verdicts = set()
        for seed in range(30):
            rec = generate(
                stack_topology(2),
                WorkloadConfig(seed=seed, conflict_probability=0.15),
            )
            verdicts.add(is_composite_correct(rec.system))
        assert verdicts == {True, False}

    def test_deterministic(self):
        a = generate(fork_topology(2), WorkloadConfig(seed=9))
        b = generate(fork_topology(2), WorkloadConfig(seed=9))
        assert a.executions == b.executions

    def test_executions_cover_all_schedules(self):
        rec = generate(stack_topology(3), WorkloadConfig(seed=0))
        for name, schedule in rec.system.schedules.items():
            assert set(rec.executions[name]) == set(schedule.operations)

    def test_roots_distributed_round_robin(self):
        rec = generate(join_topology(3), WorkloadConfig(seed=0, roots=3))
        homes = {
            rec.system.schedule_of_transaction(r) for r in rec.system.roots
        }
        assert homes == {"C1", "C2", "C3"}

    def test_empty_schedules_pruned(self):
        rec = generate(join_topology(5), WorkloadConfig(seed=0, roots=2))
        assert len(rec.system.schedules) <= 3  # 2 clients + J

    def test_batch_uses_consecutive_seeds(self):
        batch = generate_batch(
            stack_topology(2), WorkloadConfig(seed=5), count=3
        )
        singles = [
            generate(stack_topology(2), WorkloadConfig(seed=5 + i))
            for i in range(3)
        ]
        for got, want in zip(batch, singles):
            assert got.executions == want.executions


@given(
    seed=st.integers(0, 200),
    cp=st.sampled_from([0.0, 0.1, 0.4, 0.8]),
    roots=st.integers(1, 5),
)
@settings(max_examples=40, deadline=None)
def test_property_generated_stacks_validate_and_decide(seed, cp, roots):
    rec = generate(
        stack_topology(2),
        WorkloadConfig(seed=seed, roots=roots, conflict_probability=cp),
    )
    # The verdict must be computable without error on any instance.
    assert is_composite_correct(rec.system) in (True, False)


@given(seed=st.integers(0, 100))
@settings(max_examples=30, deadline=None)
def test_property_zero_conflicts_always_correct(seed):
    rec = generate(
        stack_topology(3),
        WorkloadConfig(seed=seed, conflict_probability=0.0),
    )
    assert is_composite_correct(rec.system)
