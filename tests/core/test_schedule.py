"""Unit tests for Def.-3 schedules: construction, axioms, CC."""

import pytest

from repro.core.schedule import Schedule
from repro.core.transaction import Transaction
from repro.exceptions import CycleError, ModelError, ScheduleAxiomError


def t(name, ops, **kw):
    return Transaction(name, ops, **kw)


class TestConstruction:
    def test_basic(self):
        s = Schedule("S", [t("T1", ["a"]), t("T2", ["b"])])
        assert set(s.operations) == {"a", "b"}
        assert s.transaction_of("a") == "T1"
        assert s.transaction_names == ("T1", "T2")

    def test_duplicate_transaction_rejected(self):
        with pytest.raises(ModelError):
            Schedule("S", [t("T", ["a"]), t("T", ["b"])])

    def test_shared_operation_rejected(self):
        with pytest.raises(ModelError):
            Schedule("S", [t("T1", ["a"]), t("T2", ["a"])])

    def test_conflict_on_foreign_op_rejected(self):
        with pytest.raises(ModelError):
            Schedule("S", [t("T1", ["a"])], conflicts=[("a", "zzz")])

    def test_self_conflict_rejected(self):
        with pytest.raises(ModelError):
            Schedule("S", [t("T1", ["a"])], conflicts=[("a", "a")])

    def test_input_order_over_unknown_txn_rejected(self):
        with pytest.raises(ModelError):
            Schedule("S", [t("T1", ["a"])], weak_input=[("T1", "T9")])

    def test_output_order_over_unknown_op_rejected(self):
        with pytest.raises(ModelError):
            Schedule("S", [t("T1", ["a"])], weak_output=[("a", "zzz")])

    def test_cyclic_input_rejected(self):
        with pytest.raises(CycleError):
            Schedule(
                "S",
                [t("T1", ["a"]), t("T2", ["b"])],
                weak_input=[("T1", "T2"), ("T2", "T1")],
            )

    def test_cyclic_output_rejected(self):
        with pytest.raises(CycleError):
            Schedule(
                "S",
                [t("T1", ["a"]), t("T2", ["b"])],
                weak_output=[("a", "b"), ("b", "a")],
            )

    def test_transaction_of_unknown_raises(self):
        s = Schedule("S", [t("T1", ["a"])])
        with pytest.raises(ModelError):
            s.transaction_of("zzz")

    def test_conflicting_is_symmetric(self):
        s = Schedule(
            "S",
            [t("T1", ["a"]), t("T2", ["b"])],
            conflicts=[("a", "b")],
            weak_output=[("a", "b")],
        )
        assert s.conflicting("a", "b")
        assert s.conflicting("b", "a")
        assert not s.conflicting("a", "a")

    def test_strong_input_included_in_weak_input(self):
        s = Schedule(
            "S",
            [t("T1", ["a"]), t("T2", ["b"])],
            strong_input=[("T1", "T2")],
            strong_output=[("a", "b")],
        )
        assert ("T1", "T2") in s.weak_input
        assert ("a", "b") in s.weak_output


class TestAxioms:
    def test_axiom_1a(self):
        with pytest.raises(ScheduleAxiomError) as err:
            Schedule(
                "S",
                [t("T1", ["a"]), t("T2", ["b"])],
                conflicts=[("a", "b")],
                weak_input=[("T1", "T2")],
                weak_output=[("b", "a")],
            )
        assert err.value.axiom == "1a"

    def test_axiom_1b(self):
        with pytest.raises(ScheduleAxiomError) as err:
            Schedule(
                "S",
                [t("T1", ["a"]), t("T2", ["b"])],
                conflicts=[("a", "b")],
                weak_input=[("T2", "T1")],
                weak_output=[("a", "b")],
            )
        assert err.value.axiom == "1b"

    def test_axiom_1c_conflicting_ops_must_be_ordered(self):
        with pytest.raises(ScheduleAxiomError) as err:
            Schedule(
                "S",
                [t("T1", ["a"]), t("T2", ["b"])],
                conflicts=[("a", "b")],
            )
        assert err.value.axiom == "1c"

    def test_axiom_1_skips_same_transaction_conflicts(self):
        # Conflicting operations inside one transaction are that
        # transaction's own business (Def. 3 quantifies over t != t').
        Schedule("S", [t("T1", ["a", "b"])], conflicts=[("a", "b")])

    def test_axiom_2a_intra_weak_order_must_surface(self):
        with pytest.raises(ScheduleAxiomError) as err:
            Schedule("S", [t("T1", ["a", "b"], weak_order=[("a", "b")])])
        assert err.value.axiom == "2a"

    def test_axiom_2b_intra_strong_order_must_surface(self):
        with pytest.raises(ScheduleAxiomError) as err:
            Schedule(
                "S",
                [t("T1", ["a", "b"], strong_order=[("a", "b")])],
                weak_output=[("a", "b")],
            )
        assert err.value.axiom == "2b"

    def test_axiom_3_strong_input_sequences_everything(self):
        with pytest.raises(ScheduleAxiomError) as err:
            Schedule(
                "S",
                [t("T1", ["a"]), t("T2", ["b"])],
                strong_input=[("T1", "T2")],
                weak_output=[("a", "b")],
            )
        assert err.value.axiom == "3"

    def test_valid_schedule_passes_all_axioms(self):
        Schedule(
            "S",
            [
                t("T1", ["a", "b"], weak_order=[("a", "b")]),
                t("T2", ["c"]),
            ],
            conflicts=[("b", "c")],
            weak_input=[("T1", "T2")],
            weak_output=[("a", "b"), ("b", "c")],
        )

    def test_validation_can_be_deferred(self):
        s = Schedule(
            "S",
            [t("T1", ["a"]), t("T2", ["b"])],
            conflicts=[("a", "b")],
            validate=False,
        )
        with pytest.raises(ScheduleAxiomError):
            s.validate_axioms()


class TestFromSequence:
    def test_conflicts_mode_commits_only_conflicting_pairs(self):
        s = Schedule.from_sequence(
            "S",
            [t("T1", ["a"]), t("T2", ["b"]), t("T3", ["c"])],
            ["a", "b", "c"],
            conflicts=[("a", "b")],
        )
        assert ("a", "b") in s.weak_output
        assert ("b", "c") not in s.weak_output
        assert ("a", "c") not in s.weak_output

    def test_temporal_mode_commits_everything(self):
        s = Schedule.from_sequence(
            "S",
            [t("T1", ["a"]), t("T2", ["b"])],
            ["a", "b"],
            mode="temporal",
        )
        assert ("a", "b") in s.weak_output

    def test_unknown_mode_rejected(self):
        with pytest.raises(ModelError):
            Schedule.from_sequence("S", [t("T1", ["a"])], ["a"], mode="nope")

    def test_sequence_must_cover_operations(self):
        with pytest.raises(ModelError):
            Schedule.from_sequence("S", [t("T1", ["a", "b"])], ["a"])
        with pytest.raises(ModelError):
            Schedule.from_sequence("S", [t("T1", ["a"])], ["a", "zzz"])

    def test_intra_orders_always_surface(self):
        s = Schedule.from_sequence(
            "S",
            [t("T1", ["a", "b"], weak_order=[("a", "b")])],
            ["a", "b"],
        )
        assert ("a", "b") in s.weak_output

    def test_strong_input_expanded(self):
        s = Schedule.from_sequence(
            "S",
            [t("T1", ["a"]), t("T2", ["b"])],
            ["a", "b"],
            strong_input=[("T1", "T2")],
        )
        assert ("a", "b") in s.strong_output

    def test_conflict_outside_execution_rejected(self):
        with pytest.raises(ModelError):
            Schedule.from_sequence(
                "S", [t("T1", ["a"])], ["a"], conflicts=[("a", "zzz")]
            )


class TestConflictConsistency:
    def make(self, execution, conflicts, weak_input=()):
        return Schedule.from_sequence(
            "S",
            [t("T1", ["a", "b"]), t("T2", ["c"])],
            execution,
            conflicts=conflicts,
            weak_input=weak_input,
        )

    def test_serialization_order(self):
        s = self.make(["a", "c", "b"], [("a", "c"), ("c", "b")])
        order = s.serialization_order()
        assert ("T1", "T2") in order
        assert ("T2", "T1") in order

    def test_non_serializable_interleaving_fails_cc(self):
        s = self.make(["a", "c", "b"], [("a", "c"), ("c", "b")])
        assert not s.is_conflict_consistent()
        assert s.consistency_violation() is not None

    def test_serializable_interleaving_passes_cc(self):
        s = self.make(["a", "b", "c"], [("a", "c"), ("c", "b")])
        assert s.is_conflict_consistent()
        assert s.serializable_total_order().index("T1") == 0

    def test_input_order_violation_fails_cc(self):
        # T2 serialized before T1 although the client required T1 -> T2.
        s = Schedule.from_sequence(
            "S",
            [t("T1", ["a"]), t("T2", ["c"])],
            ["c", "a"],
            conflicts=[("a", "c")],
            weak_input=[("T2", "T1")],
        )
        assert s.is_conflict_consistent()
        bad = Schedule.from_sequence(
            "S",
            [t("T1", ["a"]), t("T2", ["c"])],
            ["c", "a"],
            conflicts=[],
            weak_input=[("T1", "T2")],
        )
        # No conflicts: execution order is free, input order alone decides.
        assert bad.is_conflict_consistent()

    def test_commuting_interleaving_always_cc(self):
        s = self.make(["a", "c", "b"], [])
        assert s.is_conflict_consistent()
