"""Unit tests for the public Comp-C entry points."""

from repro.core.correctness import (
    check_composite_correctness,
    is_composite_correct,
)
from repro.core.observed import ObservedOrderOptions
from repro.figures import (
    figure1_system,
    figure2_system,
    figure3_strict_variant,
    figure3_system,
    figure4_system,
)


class TestVerdicts:
    def test_figure1_correct(self):
        report = check_composite_correctness(figure1_system())
        assert report.correct
        assert set(report.serial_witness) == {"T1", "T2", "T3", "T4", "T5"}

    def test_figure2_correct(self):
        assert is_composite_correct(figure2_system())

    def test_figure3_incorrect(self):
        report = check_composite_correctness(figure3_system())
        assert not report.correct
        assert report.serial_witness is None
        assert report.failure is not None

    def test_figure4_correct(self):
        assert is_composite_correct(figure4_system())

    def test_strict_variant_incorrect(self):
        assert not is_composite_correct(figure3_strict_variant())


class TestReport:
    def test_levels_completed(self):
        good = check_composite_correctness(figure1_system())
        assert good.levels_completed == 3
        bad = check_composite_correctness(figure3_system())
        assert bad.levels_completed == 2  # failed constructing level 3

    def test_fronts_exposed(self):
        report = check_composite_correctness(figure1_system())
        assert len(report.fronts) == 4

    def test_narrative_is_printable(self):
        report = check_composite_correctness(figure3_system())
        text = report.narrative()
        assert "composite system of order 3" in text
        assert "REJECTED" in text

    def test_repr(self):
        assert "Comp-C" in repr(check_composite_correctness(figure1_system()))
        assert "NOT Comp-C" in repr(
            check_composite_correctness(figure3_system())
        )

    def test_serial_witness_respects_observed_order(self):
        report = check_composite_correctness(figure1_system())
        order = report.serial_witness
        final = report.fronts[-1]
        position = {t: i for i, t in enumerate(order)}
        for a, b in final.observed.pairs():
            assert position[a] < position[b]


class TestOptionsPlumb:
    def test_options_reach_the_engine(self):
        opts = ObservedOrderOptions(forget_nonconflicting=False)
        assert not is_composite_correct(figure4_system(), opts)
        assert is_composite_correct(figure4_system())
