"""End-to-end walks of the paper's four figures (the F1–F4 artifacts)."""

from repro.core.correctness import check_composite_correctness
from repro.core.reduction import reduce_to_roots
from repro.figures import (
    figure1_system,
    figure2_system,
    figure3_strict_variant,
    figure3_system,
    figure4_system,
)


class TestFigure1:
    def test_structure_matches_paper(self):
        sys = figure1_system()
        assert sys.order == 3
        assert len(sys.schedules) == 5
        assert len(sys.roots) == 5

    def test_transactions_sharing_no_schedule(self):
        sys = figure1_system()
        # T3 lives on SC/SE; T5 lives on SD — no schedule in common.
        t3_schedules = {sys.schedule_of_transaction("T3")} | {
            sys.schedule_of_transaction(n)
            for n in sys.activity("T3")
            if sys.is_transaction(n)
        }
        t5_schedules = {sys.schedule_of_transaction("T5")}
        assert not (t3_schedules & t5_schedules)

    def test_execution_is_comp_c(self):
        assert check_composite_correctness(figure1_system()).correct


class TestFigure2:
    def test_leaf_conflict_pulled_to_roots(self):
        sys = figure2_system()
        result = reduce_to_roots(sys)
        assert result.succeeded
        final = result.final_front
        # o13 < o25 on S4 climbs to T1 < T2 at the top.
        assert ("T1", "T2") in final.observed

    def test_transitive_relation_t1_t3(self):
        result = reduce_to_roots(figure2_system())
        final = result.final_front
        assert ("T1", "T3") in final.observed  # via T2


class TestFigure3:
    def test_rejected_exactly_at_the_isolation_step(self):
        result = reduce_to_roots(figure3_system())
        assert not result.succeeded
        assert result.failure.stage == "calculation"
        assert result.failure.level == 3
        assert len(result.fronts) == 3  # levels 0..2 succeeded

    def test_crossed_orders_visible_in_level2_front(self):
        result = reduce_to_roots(figure3_system())
        f2 = result.fronts[2]
        assert ("p", "r") in f2.observed
        assert ("s", "q") in f2.observed

    def test_cycle_names_the_roots(self):
        result = reduce_to_roots(figure3_system())
        assert set(result.failure.cycle) == {"T1", "T2"}


class TestFigure4:
    def test_accepted_with_forgotten_orders(self):
        result = reduce_to_roots(figure4_system())
        assert result.succeeded
        # The crossed orders are pulled into the level-2 front (their
        # endpoints conflicted on SP/SQ, Def. 10.2)...
        f2 = result.fronts[2]
        assert ("p", "r") in f2.observed
        assert ("s", "q") in f2.observed
        # ...but SA vouches that p,r and s,q commute, so they neither
        # constrain the root-level calculation nor survive the final
        # pull-up: the root front carries no observed order at all.
        final = result.final_front
        assert len(final.observed) == 0

    def test_same_leaf_behaviour_as_figure3(self):
        a, b = figure3_system(), figure4_system()
        assert set(a.leaves) == set(b.leaves)
        for sname in ("SP", "SQ", "SC", "SD"):
            assert (
                a.schedule(sname).conflicts == b.schedule(sname).conflicts
            )

    def test_declaring_the_conflicts_flips_the_verdict(self):
        assert reduce_to_roots(figure4_system()).succeeded
        assert not reduce_to_roots(figure3_strict_variant()).succeeded
