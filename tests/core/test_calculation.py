"""Unit tests for calculations (Def. 14) and isolation feasibility."""

from repro.core.builder import SystemBuilder
from repro.core.calculation import (
    calculation_constraints,
    find_isolation_failure,
    grouping_for_level,
    is_contiguous,
    witness_sequence,
)
from repro.core.reduction import ReductionEngine
from repro.figures import figure3_system, figure4_system


def stack(db_exec, top_conflicts=()):
    b = SystemBuilder()
    b.transaction("T1", "Top", ["u1", "u2"])
    b.transaction("T2", "Top", ["v1"])
    for a, c in top_conflicts:
        b.conflict("Top", a, c)
    b.executed("Top", ["u1", "v1", "u2"])
    b.transaction("u1", "DB", ["x1"])
    b.transaction("u2", "DB", ["x2"])
    b.transaction("v1", "DB", ["y1"])
    b.conflict("DB", "x1", "y1")
    b.conflict("DB", "y1", "x2")
    b.executed("DB", db_exec)
    return b.build()


class TestGrouping:
    def test_groups_by_parent_at_level(self):
        sys = stack(["x1", "y1", "x2"])
        engine = ReductionEngine(sys)
        f0 = engine.level0_front()
        g = grouping_for_level(sys, f0.nodes, 1)
        assert g.groups == {"u1": ["x1"], "u2": ["x2"], "v1": ["y1"]}
        assert g.rep("x1") == "u1"

    def test_survivors_map_to_themselves(self):
        sys = figure3_system()
        engine = ReductionEngine(sys)
        f0 = engine.level0_front()
        g = grouping_for_level(sys, f0.nodes, 1)
        for node in f0.nodes:
            assert g.rep(node) in (node, sys.parent(node))

    def test_new_nodes_order_is_stable(self):
        sys = stack(["x1", "y1", "x2"])
        f0 = ReductionEngine(sys).level0_front()
        g = grouping_for_level(sys, f0.nodes, 1)
        # Leaf order follows declaration order (x1, x2, y1), so the
        # collapsed nodes appear at their first member's position.
        assert g.new_nodes(f0.nodes) == ("u1", "u2", "v1")


class TestConstraints:
    def test_observed_pairs_become_constraints(self):
        sys = stack(["x1", "y1", "x2"])
        engine = ReductionEngine(sys)
        f0 = engine.level0_front()
        g = grouping_for_level(sys, f0.nodes, 1)
        constraints = calculation_constraints(sys, f0, g)
        assert ("x1", "y1") in constraints
        assert ("y1", "x2") in constraints

    def test_intra_transaction_orders_added_within_groups(self):
        b = SystemBuilder()
        b.transaction("T1", "S", ["a", "b"], weak_order=[("a", "b")])
        b.executed("S", ["a", "b"])
        sys = b.build()
        engine = ReductionEngine(sys)
        f0 = engine.level0_front()
        g = grouping_for_level(sys, f0.nodes, 1)
        constraints = calculation_constraints(sys, f0, g)
        assert ("a", "b") in constraints


class TestIsolation:
    def test_isolable_front_passes(self):
        sys = stack(["x1", "x2", "y1"])  # T1's work contiguous
        engine = ReductionEngine(sys)
        f0 = engine.level0_front()
        g = grouping_for_level(sys, f0.nodes, 1)
        constraints = calculation_constraints(sys, f0, g)
        assert find_isolation_failure(constraints, g) is None

    def test_wrapped_conflicts_fail_at_parent_level(self):
        # x1 < y1 < x2 with conflicts on both sides: u1/u2 cannot join.
        sys = stack(["x1", "y1", "x2"], top_conflicts=[("u1", "v1"), ("v1", "u2")])
        result = ReductionEngine(sys).run()
        assert result.failure is not None
        assert result.failure.stage == "calculation"
        assert result.failure.level == 2

    def test_failure_reports_blocked_transactions(self):
        result = ReductionEngine(figure3_system()).run()
        assert result.failure is not None
        assert "T1" in result.failure.blocked or "T2" in result.failure.blocked

    def test_internal_cycle_detected(self):
        # A transaction whose own observed order contradicts its intra
        # order cannot be calculated.
        b = SystemBuilder()
        b.transaction("T1", "S", ["a", "b"], weak_order=[("a", "b")])
        b.transaction("T2", "S", ["c"])
        b.conflict("S", "a", "c")
        b.conflict("S", "c", "b")
        b.executed("S", ["a", "c", "b"])
        sys = b.build()
        result = ReductionEngine(sys).run()
        assert result.failure is not None


class TestWitness:
    def test_witness_sequence_is_contiguous_per_group(self):
        sys = figure4_system()
        engine = ReductionEngine(sys)
        result = engine.run()
        assert result.succeeded
        # Re-derive the witness of the last step and check contiguity.
        front = result.fronts[-2]
        g = grouping_for_level(sys, front.nodes, front.level + 1)
        constraints = calculation_constraints(sys, front, g)
        assert find_isolation_failure(constraints, g) is None
        seq = witness_sequence(constraints, g, front.nodes)
        assert sorted(seq) == sorted(front.nodes)
        for members in g.groups.values():
            assert is_contiguous(seq, members)

    def test_witnesses_recorded_per_level(self):
        result = ReductionEngine(figure4_system()).run()
        assert len(result.witnesses) == len(result.fronts) - 1

    def test_is_contiguous_helper(self):
        assert is_contiguous(["a", "b", "c"], ["a", "b"])
        assert not is_contiguous(["a", "c", "b"], ["a", "b"])
        assert is_contiguous(["a", "c", "b"], ["c"])
