"""Unit and property tests for the Relation engine (core/orders.py)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.orders import Relation, total_order_from_sequence
from repro.exceptions import CycleError


def rel(*pairs, elements=()):
    return Relation(pairs=pairs, elements=elements)


class TestConstruction:
    def test_empty(self):
        r = Relation()
        assert len(r) == 0
        assert not r
        assert r.elements == ()

    def test_add_pair_registers_elements(self):
        r = rel(("a", "b"))
        assert ("a", "b") in r
        assert set(r.elements) == {"a", "b"}

    def test_add_is_idempotent(self):
        r = Relation()
        r.add("a", "b")
        r.add("a", "b")
        assert len(r) == 1

    def test_isolated_elements_kept(self):
        r = rel(("a", "b"), elements=("c",))
        assert "c" in r.elements
        assert r.topological_sort().count("c") == 1

    def test_discard(self):
        r = rel(("a", "b"))
        r.discard("a", "b")
        assert ("a", "b") not in r
        assert len(r) == 0
        assert set(r.elements) == {"a", "b"}

    def test_discard_missing_is_noop(self):
        r = rel(("a", "b"))
        r.discard("b", "a")
        assert len(r) == 1

    def test_copy_is_independent(self):
        r = rel(("a", "b"))
        clone = r.copy()
        clone.add("b", "c")
        assert ("b", "c") not in r
        assert ("a", "b") in clone

    def test_equality(self):
        assert rel(("a", "b")) == rel(("a", "b"))
        assert rel(("a", "b")) != rel(("b", "a"))
        assert rel(("a", "b")) != rel(("a", "b"), elements=("c",))

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(rel(("a", "b")))


class TestQueries:
    def test_successors_predecessors(self):
        r = rel(("a", "b"), ("a", "c"), ("b", "c"))
        assert r.successors("a") == {"b", "c"}
        assert r.predecessors("c") == {"a", "b"}
        assert r.successors("c") == set()

    def test_orders_is_symmetric_query(self):
        r = rel(("a", "b"))
        assert r.orders("a", "b")
        assert r.orders("b", "a")
        assert not r.orders("a", "c")

    def test_reaches(self):
        r = rel(("a", "b"), ("b", "c"))
        assert r.reaches("a", "c")
        assert not r.reaches("c", "a")
        assert not r.reaches("missing", "a")

    def test_pairs_deterministic(self):
        r = rel(("a", "c"), ("a", "b"))
        assert list(r.pairs()) == list(r.pairs())


class TestAlgebra:
    def test_union(self):
        u = rel(("a", "b")).union(rel(("b", "c")))
        assert ("a", "b") in u and ("b", "c") in u

    def test_union_keeps_isolated_elements(self):
        u = rel(("a", "b")).union(rel(elements=("z",)))
        assert "z" in u.elements

    def test_restricted_to(self):
        r = rel(("a", "b"), ("b", "c"), ("a", "c"))
        sub = r.restricted_to({"a", "c"})
        assert ("a", "c") in sub
        assert ("a", "b") not in sub
        assert set(sub.elements) == {"a", "c"}

    def test_mapped_quotient_drops_loops(self):
        r = rel(("a", "b"), ("b", "c"))
        group = {"a": "G", "b": "G", "c": "c"}
        q = r.mapped(lambda x: group[x])
        assert ("G", "c") in q
        assert ("G", "G") not in q

    def test_mapped_can_keep_loops(self):
        r = rel(("a", "b"))
        q = r.mapped(lambda _x: "G", drop_loops=False)
        assert ("G", "G") in q

    def test_inverse(self):
        r = rel(("a", "b"))
        assert ("b", "a") in r.inverse()

    def test_transitive_closure(self):
        r = rel(("a", "b"), ("b", "c"), ("c", "d"))
        tc = r.transitive_closure()
        assert ("a", "d") in tc
        assert ("d", "a") not in tc

    def test_closure_idempotent(self):
        r = rel(("a", "b"), ("b", "c"))
        once = r.transitive_closure()
        twice = once.transitive_closure()
        assert once == twice

    def test_closure_of_cycle_includes_self_pairs(self):
        r = rel(("a", "b"), ("b", "a"))
        tc = r.transitive_closure()
        assert ("a", "a") in tc
        assert ("b", "b") in tc


class TestOrderProperties:
    def test_find_cycle_none_when_acyclic(self):
        assert rel(("a", "b"), ("b", "c")).find_cycle() is None

    def test_find_cycle_witness(self):
        cycle = rel(("a", "b"), ("b", "c"), ("c", "a")).find_cycle()
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        assert len(cycle) == 4

    def test_self_loop_is_cycle(self):
        cycle = rel(("a", "a")).find_cycle()
        assert cycle == ["a", "a"]

    def test_is_acyclic(self):
        assert rel(("a", "b")).is_acyclic()
        assert not rel(("a", "b"), ("b", "a")).is_acyclic()

    def test_irreflexive(self):
        assert rel(("a", "b")).is_irreflexive()
        assert not rel(("a", "a")).is_irreflexive()

    def test_is_transitive(self):
        assert rel(("a", "b"), ("b", "c"), ("a", "c")).is_transitive()
        assert not rel(("a", "b"), ("b", "c")).is_transitive()

    def test_strict_partial_order(self):
        assert rel(("a", "b"), ("b", "c")).is_strict_partial_order()
        assert not rel(("a", "a")).is_strict_partial_order()
        assert not rel(("a", "b"), ("b", "a")).is_strict_partial_order()

    def test_is_total_over(self):
        r = rel(("a", "b"), ("b", "c"), ("a", "c"))
        assert r.is_total_over(["a", "b", "c"])
        assert not r.is_total_over(["a", "b", "c", "d"])
        assert r.is_total_over([])


class TestTopologicalSort:
    def test_respects_order(self):
        r = rel(("a", "b"), ("c", "b"), ("b", "d"))
        order = r.topological_sort()
        assert order.index("a") < order.index("b") < order.index("d")
        assert order.index("c") < order.index("b")

    def test_raises_with_witness_on_cycle(self):
        with pytest.raises(CycleError) as err:
            rel(("a", "b"), ("b", "a")).topological_sort()
        assert err.value.cycle[0] == err.value.cycle[-1]

    def test_deterministic_tie_break(self):
        r = Relation(elements=("z", "m", "a"))
        assert r.topological_sort() == ["z", "m", "a"]

    def test_all_topological_sorts_chain(self):
        r = rel(("a", "b"), ("b", "c"))
        assert list(r.all_topological_sorts()) == [["a", "b", "c"]]

    def test_all_topological_sorts_antichain(self):
        r = Relation(elements=("a", "b", "c"))
        sorts = list(r.all_topological_sorts())
        assert len(sorts) == 6

    def test_all_topological_sorts_limit(self):
        r = Relation(elements=tuple("abcdef"))
        assert len(list(r.all_topological_sorts(limit=5))) == 5

    def test_all_topological_sorts_cycle_yields_nothing(self):
        r = rel(("a", "b"), ("b", "a"))
        assert list(r.all_topological_sorts()) == []


class TestTotalOrderFromSequence:
    def test_adjacent_pairs(self):
        r = total_order_from_sequence(["a", "b", "c"])
        assert ("a", "b") in r and ("b", "c") in r
        assert ("a", "c") not in r
        assert ("a", "c") in r.transitive_closure()

    def test_single_and_empty(self):
        assert len(total_order_from_sequence(["a"])) == 0
        assert len(total_order_from_sequence([])) == 0


# ----------------------------------------------------------------------
# property-based tests
# ----------------------------------------------------------------------
nodes = st.integers(min_value=0, max_value=7)
pair_lists = st.lists(st.tuples(nodes, nodes), max_size=25)
dag_pairs = st.lists(
    st.tuples(nodes, nodes).filter(lambda p: p[0] < p[1]), max_size=25
)


@given(pair_lists)
@settings(max_examples=150, deadline=None)
def test_closure_is_monotone_and_idempotent(pairs):
    r = Relation(pairs)
    tc = r.transitive_closure()
    for pair in r.pairs():
        assert pair in tc
    assert tc.transitive_closure() == tc
    assert tc.is_transitive()


@given(dag_pairs)
@settings(max_examples=150, deadline=None)
def test_dags_linearize_consistently(pairs):
    r = Relation(pairs)
    assert r.is_acyclic()
    order = r.topological_sort()
    position = {e: i for i, e in enumerate(order)}
    for a, b in r.pairs():
        assert position[a] < position[b]
    assert sorted(order, key=str) == sorted(r.elements, key=str)


@given(pair_lists)
@settings(max_examples=150, deadline=None)
def test_cycle_witness_is_genuine(pairs):
    r = Relation(pairs)
    cycle = r.find_cycle()
    if cycle is None:
        assert r.topological_sort() is not None
    else:
        assert cycle[0] == cycle[-1]
        for a, b in zip(cycle, cycle[1:]):
            assert (a, b) in r


@given(pair_lists, pair_lists)
@settings(max_examples=100, deadline=None)
def test_union_contains_both(p1, p2):
    a, b = Relation(p1), Relation(p2)
    u = a.union(b)
    for pair in a.pairs():
        assert pair in u
    for pair in b.pairs():
        assert pair in u


@given(dag_pairs)
@settings(max_examples=60, deadline=None)
def test_quotient_of_identity_is_same_graph(pairs):
    r = Relation(pairs)
    assert r.mapped(lambda x: x) == r
