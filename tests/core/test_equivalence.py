"""Tests for cross-system equivalence (Def. 18 across structures)."""

import pytest

from repro.core.builder import SystemBuilder
from repro.core.equivalence import (
    abstracts_to_flat,
    front_at_level,
    level_equivalent_systems,
    rename_front,
    root_behaviour,
)
from repro.exceptions import ReductionError
from repro.figures import figure3_system, figure4_system


def deep_system(db_exec=("x", "y")):
    """Two roots, work delegated through a mid layer to a DB."""
    b = SystemBuilder()
    b.transaction("T1", "Top", ["u"])
    b.transaction("T2", "Top", ["v"])
    b.conflict("Top", "u", "v")
    b.executed("Top", ["u", "v"])
    b.transaction("u", "DB", ["x"])
    b.transaction("v", "DB", ["y"])
    b.conflict("DB", "x", "y")
    b.executed("DB", list(db_exec))
    return b.build()


def flat_system(order=("a", "b")):
    """The same two roots doing the work directly on one schedule."""
    b = SystemBuilder()
    b.transaction("T1", "S", ["a"])
    b.transaction("T2", "S", ["b"])
    b.conflict("S", "a", "b")
    b.executed("S", list(order))
    return b.build()


class TestFrontAtLevel:
    def test_levels_accessible(self):
        sys = deep_system()
        f1 = front_at_level(sys, 1)
        assert set(f1.nodes) == {"u", "v"}
        f2 = front_at_level(sys, 2)
        assert set(f2.nodes) == {"T1", "T2"}

    def test_level_beyond_order_rejected(self):
        with pytest.raises(ReductionError):
            front_at_level(deep_system(), 5)

    def test_incorrect_execution_has_no_root_front(self):
        with pytest.raises(ReductionError):
            front_at_level(figure3_system(), 3)


class TestRenameFront:
    def test_rename(self):
        front = front_at_level(flat_system(), 1)
        renamed = rename_front(front, {"T1": "A", "T2": "B"})
        assert set(renamed.nodes) == {"A", "B"}
        assert ("A", "B") in renamed.observed

    def test_collapsing_rename_rejected(self):
        front = front_at_level(flat_system(), 1)
        with pytest.raises(ValueError):
            rename_front(front, {"T1": "T2"})


class TestCrossSystemEquivalence:
    def test_deep_equals_flat_with_same_effect(self):
        # Both serialize T1 before T2: same root front, despite one
        # system being two levels deeper.
        assert level_equivalent_systems(
            deep_system(("x", "y")), 2, flat_system(("a", "b")), 1
        )
        assert abstracts_to_flat(deep_system(("x", "y")), flat_system(("a", "b")))

    def test_opposite_effects_differ(self):
        assert not level_equivalent_systems(
            deep_system(("x", "y")), 2, flat_system(("b", "a")), 1
        )

    def test_failed_execution_is_equivalent_to_nothing(self):
        assert not level_equivalent_systems(
            figure3_system(), 3, flat_system(), 1
        )

    def test_rename_bridges_node_identities(self):
        b = SystemBuilder()
        b.transaction("P", "S", ["a"]).transaction("Q", "S", ["b"])
        b.conflict("S", "a", "b")
        b.executed("S", ["a", "b"])
        other = b.build()
        assert level_equivalent_systems(
            flat_system(), 1, other, 1, rename={"T1": "P", "T2": "Q"}
        )

    def test_flat_reference_enforced(self):
        with pytest.raises(ValueError):
            abstracts_to_flat(deep_system(), deep_system())


class TestRootBehaviour:
    def test_digest_of_correct_execution(self):
        digest = root_behaviour(deep_system())
        assert digest["nodes"] == ["T1", "T2"]
        assert ("T1", "T2") in digest["observed"]

    def test_digest_of_incorrect_execution_is_none(self):
        assert root_behaviour(figure3_system()) is None

    def test_figure4_digest_has_no_observed_pairs(self):
        digest = root_behaviour(figure4_system())
        assert digest["observed"] == []
