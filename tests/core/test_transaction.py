"""Unit tests for Def.-2 transactions."""

import pytest

from repro.core.transaction import Transaction
from repro.exceptions import CycleError, ModelError


class TestConstruction:
    def test_basic(self):
        t = Transaction("T", ["a", "b", "c"])
        assert t.operations == ("a", "b", "c")
        assert len(t) == 3
        assert not t.weakly_ordered("a", "b")

    def test_empty_name_rejected(self):
        with pytest.raises(ModelError):
            Transaction("", ["a"])

    def test_duplicate_operations_rejected(self):
        with pytest.raises(ModelError):
            Transaction("T", ["a", "a"])

    def test_self_containment_rejected(self):
        with pytest.raises(ModelError):
            Transaction("T", ["T"])

    def test_order_over_unknown_op_rejected(self):
        with pytest.raises(ModelError):
            Transaction("T", ["a"], weak_order=[("a", "zzz")])
        with pytest.raises(ModelError):
            Transaction("T", ["a"], strong_order=[("zzz", "a")])

    def test_cyclic_weak_order_rejected(self):
        with pytest.raises(CycleError):
            Transaction("T", ["a", "b"], weak_order=[("a", "b"), ("b", "a")])

    def test_empty_operations_allowed(self):
        # Degenerate but legal: a transaction that did nothing.
        t = Transaction("T", [])
        assert t.operations == ()


class TestOrders:
    def test_strong_implies_weak(self):
        t = Transaction("T", ["a", "b"], strong_order=[("a", "b")])
        assert t.strongly_ordered("a", "b")
        assert t.weakly_ordered("a", "b")

    def test_weak_does_not_imply_strong(self):
        t = Transaction("T", ["a", "b"], weak_order=[("a", "b")])
        assert t.weakly_ordered("a", "b")
        assert not t.strongly_ordered("a", "b")

    def test_orders_transitively_closed(self):
        t = Transaction(
            "T", ["a", "b", "c"], weak_order=[("a", "b"), ("b", "c")]
        )
        assert t.weakly_ordered("a", "c")

    def test_sequential_flag_builds_total_strong_order(self):
        t = Transaction("T", ["a", "b", "c"], sequential=True)
        assert t.strongly_ordered("a", "c")
        assert t.is_sequential()

    def test_non_sequential(self):
        t = Transaction("T", ["a", "b"])
        assert not t.is_sequential()

    def test_mixed_weak_cycle_with_strong_rejected(self):
        with pytest.raises(CycleError):
            Transaction(
                "T",
                ["a", "b"],
                weak_order=[("b", "a")],
                strong_order=[("a", "b")],
            )


class TestValueSemantics:
    def test_equality(self):
        a = Transaction("T", ["x", "y"], weak_order=[("x", "y")])
        b = Transaction("T", ["x", "y"], weak_order=[("x", "y")])
        assert a == b

    def test_inequality_on_orders(self):
        a = Transaction("T", ["x", "y"], weak_order=[("x", "y")])
        b = Transaction("T", ["x", "y"])
        assert a != b

    def test_hashable(self):
        assert {Transaction("T", ["x"])}

    def test_repr_mentions_name(self):
        assert "T9" in repr(Transaction("T9", ["x"]))
