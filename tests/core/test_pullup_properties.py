"""Property tests for observed-order pull-up invariants.

Pinned here because they are the load-bearing semantics of Def. 10 (see
DESIGN.md note 2): pull-up never invents dependencies that seeds cannot
justify, forgetting is monotone (disabling it only rejects more), and
front observed orders shrink along the reduction in the sense that every
root-level pair is traceable to a seed chain.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.diagnosis import _seed_graph
from repro.core.observed import ObservedOrderOptions
from repro.core.reduction import reduce_to_roots
from repro.testing import recorded_executions
from repro.workloads.topologies import (
    join_topology,
    random_dag_topology,
    stack_topology,
)

STRICT = ObservedOrderOptions(forget_nonconflicting=False)


@given(recorded_executions(kinds=("stack", "join", "dag")))
@settings(max_examples=40, deadline=None)
def test_forgetting_is_monotone(recorded):
    default = reduce_to_roots(recorded.system).succeeded
    strict = reduce_to_roots(recorded.system, STRICT).succeeded
    # Disabling the forgetting rule can only reject more, never less.
    assert not strict or default


@given(recorded_executions(kinds=("stack", "fork", "join")))
@settings(max_examples=30, deadline=None)
def test_root_level_observed_pairs_trace_to_ground_chains(recorded):
    # Ground truth = conflicting ordered pairs (the seeds) plus
    # program-order links (intra-transaction weak orders and schedule
    # input orders): every root-level observed pair must be witnessed by
    # a chain through that relation — pull-up invents nothing.
    system = recorded.system
    result = reduce_to_roots(system)
    if not result.succeeded:
        return
    ground = _seed_graph(system)
    for schedule in system.schedules.values():
        for txn in schedule.transactions.values():
            ground.add_all(txn.weak_order.pairs())
        ground.add_all(schedule.weak_input.pairs())
    # Chains may pass through entire third-party trees (a composite
    # transaction is atomic in any serial order, so reaching INTO a tree
    # and leaving FROM a different node of it is a legitimate link —
    # Def. 10.4 transitivity works at root granularity after pull-up).
    at_roots = ground.mapped(system.root_of).transitive_closure()
    for a, b in result.final_front.observed.pairs():
        assert (a, b) in at_roots, (
            f"root pair ({a}, {b}) has no ground-level justification"
        )


@given(recorded_executions(kinds=("stack", "dag"), layouts=("random",)))
@settings(max_examples=30, deadline=None)
def test_verdict_independent_of_front_inspection(recorded):
    # Running the reduction twice, or stopping early and resuming via a
    # fresh engine, never changes the verdict: the procedure is a pure
    # function of the system.
    first = reduce_to_roots(recorded.system)
    second = reduce_to_roots(recorded.system)
    assert first.succeeded == second.succeeded
    if first.succeeded:
        assert [f.nodes for f in first.fronts] == [
            f.nodes for f in second.fronts
        ]


@given(
    seed=st.integers(0, 2000),
    kind=st.sampled_from(["stack", "join", "dag"]),
)
@settings(max_examples=40, deadline=None)
def test_observed_orders_never_relate_nodes_of_one_root_at_the_top(seed, kind):
    from repro.workloads.generator import WorkloadConfig, generate

    spec = {
        "stack": stack_topology(2),
        "join": join_topology(2),
        "dag": random_dag_topology(2, 2, seed=seed % 7),
    }[kind]
    recorded = generate(
        spec, WorkloadConfig(seed=seed, roots=3, conflict_probability=0.25)
    )
    result = reduce_to_roots(recorded.system)
    if not result.succeeded:
        return
    final = result.final_front
    for a, b in final.observed.pairs():
        assert a != b
        # both endpoints are roots; no reflexive or intra-tree pairs
        assert recorded.system.is_root(a) and recorded.system.is_root(b)
