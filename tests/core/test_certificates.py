"""Unit tests for rejection-certificate validation."""

import pytest

from repro.core.builder import SystemBuilder
from repro.core.certificates import validate_failure_certificate
from repro.core.reduction import reduce_to_roots
from repro.exceptions import ReductionError
from repro.figures import figure3_strict_variant, figure3_system, figure4_system


class TestCalculationCertificates:
    def test_figure3_certificate_validates(self):
        result = reduce_to_roots(figure3_system())
        check = validate_failure_certificate(result)
        assert check, check.reasons
        assert check.edges  # every quotient edge has a forced witness

    def test_strict_variant_certificate_validates(self):
        result = reduce_to_roots(figure3_strict_variant())
        check = validate_failure_certificate(result)
        assert check, check.reasons

    def test_edges_carry_justifications(self):
        result = reduce_to_roots(figure3_system())
        check = validate_failure_certificate(result)
        kinds = {kind for _a, _b, kind in check.edges}
        assert "observed order" in kinds


class TestCcCertificates:
    def test_cc_failure_certificate_validates(self):
        b = SystemBuilder()
        b.transaction("T1", "Top", ["u"])
        b.transaction("T2", "Top", ["v"])
        b.conflict("Top", "u", "v")
        b.executed("Top", ["u", "v"])
        b.transaction("u", "DB", ["x"])
        b.transaction("v", "DB", ["y"])
        b.conflict("DB", "x", "y")
        b.executed("DB", ["y", "x"])
        sys = b.build(validate=False)
        result = reduce_to_roots(sys)
        assert result.failure.stage == "cc"
        check = validate_failure_certificate(result)
        assert check, check.reasons


class TestMisuse:
    def test_successful_reduction_has_no_certificate(self):
        result = reduce_to_roots(figure4_system())
        with pytest.raises(ReductionError):
            validate_failure_certificate(result)
