"""The pre-bitset dict-of-sets relation engine, kept for testing.

This is the ``Relation`` implementation exactly as it stood before the
packed-bitset rewrite (successor/predecessor dict-of-sets as native
storage, bitsets materialized per closure call), renamed to
``DictRelation``.  It exists solely as the differential-testing oracle:
the property tests drive identical operation sequences through both
engines and assert identical pairs, verdicts and witnesses, and the
micro benchmarks quantify the rewrite's closure speedup against it.

Not part of the library — never import this from ``src/``.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.exceptions import CycleError

Element = Hashable
Pair = Tuple[Element, Element]

#: Closure instrumentation: mutated by :meth:`Relation.transitive_closure`
#: and :meth:`Relation.delta_closure`, snapshotted by the reduction
#: engine's profiler.  ``calls`` counts closure invocations; ``rows``
#: counts bitset rows actually (re)computed — the quantity the
#: incremental path saves.  Per-process (each pool worker has its own).
CLOSURE_COUNTERS = {"calls": 0, "rows": 0}


def closure_counters() -> Dict[str, int]:
    """A snapshot of the module-level closure counters."""
    return dict(CLOSURE_COUNTERS)


def reset_closure_counters() -> None:
    """Zero the closure counters (benchmark/test hygiene)."""
    CLOSURE_COUNTERS["calls"] = 0
    CLOSURE_COUNTERS["rows"] = 0


class DictRelation:
    """A finite binary relation ``R ⊆ E × E`` over a carrier set ``E``.

    The carrier set always contains every element mentioned by a pair,
    and may contain isolated elements (needed so that topological sorts
    enumerate unordered nodes too).

    >>> r = DictRelation([("a", "b"), ("b", "c")])
    >>> ("a", "c") in r
    False
    >>> ("a", "c") in r.transitive_closure()
    True
    >>> r.topological_sort()
    ['a', 'b', 'c']
    >>> r.add("c", "a")
    >>> r.find_cycle()
    ['a', 'b', 'c', 'a']
    """

    __slots__ = ("_succ", "_pred", "_elements", "_size")

    def __init__(
        self,
        pairs: Iterable[Pair] = (),
        elements: Iterable[Element] = (),
    ) -> None:
        self._succ: Dict[Element, Set[Element]] = {}
        self._pred: Dict[Element, Set[Element]] = {}
        self._elements: Dict[Element, None] = {}
        self._size = 0
        for element in elements:
            self.add_element(element)
        for a, b in pairs:
            self.add(a, b)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_element(self, element: Element) -> None:
        """Add ``element`` to the carrier set (idempotent)."""
        if element not in self._elements:
            self._elements[element] = None

    def add(self, a: Element, b: Element) -> None:
        """Add the pair ``(a, b)`` — i.e. assert ``a R b`` (idempotent)."""
        self.add_element(a)
        self.add_element(b)
        bucket = self._succ.setdefault(a, set())
        if b not in bucket:
            bucket.add(b)
            self._pred.setdefault(b, set()).add(a)
            self._size += 1

    def add_all(self, pairs: Iterable[Pair]) -> None:
        """Add every pair in ``pairs``."""
        for a, b in pairs:
            self.add(a, b)

    def discard(self, a: Element, b: Element) -> None:
        """Remove the pair ``(a, b)`` if present (carrier set unchanged)."""
        bucket = self._succ.get(a)
        if bucket and b in bucket:
            bucket.remove(b)
            self._pred[b].remove(a)
            self._size -= 1

    def copy(self) -> "DictRelation":
        """Return an independent copy."""
        clone = DictRelation(elements=self._elements)
        for a, bs in self._succ.items():
            for b in bs:
                clone.add(a, b)
        return clone

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, pair: Pair) -> bool:
        a, b = pair
        return b in self._succ.get(a, ())

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DictRelation):
            return NotImplemented
        return (
            set(self._elements) == set(other._elements)
            and set(self.pairs()) == set(other.pairs())
        )

    def __hash__(self) -> int:  # pragma: no cover - relations are not hashed
        raise TypeError("DictRelation is unhashable (mutable)")

    def __repr__(self) -> str:
        shown = ", ".join(f"{a}<{b}" for a, b in list(self.pairs())[:8])
        more = "" if self._size <= 8 else f", ... ({self._size} pairs)"
        return f"DictRelation({shown}{more})"

    @property
    def elements(self) -> Tuple[Element, ...]:
        """The carrier set, in insertion order."""
        return tuple(self._elements)

    def pairs(self) -> Iterator[Pair]:
        """Iterate over all pairs in deterministic order."""
        for a in self._elements:
            bucket = self._succ.get(a)
            if bucket:
                for b in sorted(bucket, key=_sort_key):
                    yield (a, b)

    def successors(self, a: Element) -> Set[Element]:
        """All ``b`` with ``a R b``."""
        return set(self._succ.get(a, ()))

    def predecessors(self, b: Element) -> Set[Element]:
        """All ``a`` with ``a R b``."""
        return set(self._pred.get(b, ()))

    def orders(self, a: Element, b: Element) -> bool:
        """True if ``a`` and ``b`` are related in either direction."""
        return (a, b) in self or (b, a) in self

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------
    def union(self, *others: "DictRelation") -> "DictRelation":
        """Union of this relation with ``others`` (carriers merged)."""
        result = self.copy()
        for other in others:
            for element in other._elements:
                result.add_element(element)
            for a, bs in other._succ.items():
                for b in bs:
                    result.add(a, b)
        return result

    def restricted_to(
        self,
        keep: Iterable[Element],
        *,
        carrier: "Optional[Iterable[Element]]" = None,
    ) -> "DictRelation":
        """The sub-relation induced on the elements of ``keep``.

        Rows are copied by whole-set intersection, not pair by pair —
        the restriction is the carried base of every incremental
        reduction step, and per-pair ``add`` calls dominated its cost.
        ``carrier`` optionally fixes the result's carrier (it must
        contain every kept element of ``self``; extra elements get
        empty rows) — the reduction uses this to place the parent
        transactions at their Def.-16 positions.  A restriction of a
        transitively closed relation is itself closed.
        """
        keep_set = set(keep)
        if carrier is None:
            carrier = (e for e in self._elements if e in keep_set)
        result = DictRelation(elements=carrier)
        size = 0
        for a, bucket in self._succ.items():
            if a not in keep_set:
                continue
            row = bucket & keep_set
            if not row:
                continue
            result._succ[a] = row
            size += len(row)
            for b in row:
                result._pred.setdefault(b, set()).add(a)
        result._size = size
        return result

    def mapped(
        self,
        representative: Callable[[Element], Element],
        *,
        drop_loops: bool = True,
    ) -> "DictRelation":
        """Quotient: replace every element by ``representative(element)``.

        This is the engine of the reduction step (Def. 16): grouping the
        operations of a level-*i* transaction collapses them to the
        transaction node.  Self-loops created by the collapse are dropped
        by default (pairs internal to a group carry no inter-node
        constraint).
        """
        result = DictRelation(
            elements=(representative(e) for e in self._elements)
        )
        for a, bs in self._succ.items():
            ra = representative(a)
            for b in bs:
                rb = representative(b)
                if drop_loops and ra == rb:
                    continue
                result.add(ra, rb)
        return result

    def inverse(self) -> "DictRelation":
        """The converse relation ``{(b, a) : (a, b) ∈ R}``."""
        result = DictRelation(elements=self._elements)
        for a, bs in self._succ.items():
            for b in bs:
                result.add(b, a)
        return result

    def transitive_closure(self) -> "DictRelation":
        """The smallest transitive relation containing this one.

        Implemented with integer bitsets: elements are indexed, each
        row is one arbitrary-precision int, and reachability propagates
        through the strongly-connected-component condensation in reverse
        topological order — ``O(V·E/w)`` word-packed, which keeps the
        checker's per-level closures cheap even on histories with
        thousands of operations.  (``source R source`` appears exactly
        when the source lies on a cycle, matching the DFS semantics the
        test suite pins down.)
        """
        elements = list(self._elements)
        index = {e: i for i, e in enumerate(elements)}
        n = len(elements)
        CLOSURE_COUNTERS["calls"] += 1
        CLOSURE_COUNTERS["rows"] += n
        rows = [0] * n
        for a, bs in self._succ.items():
            ia = index[a]
            for b in bs:
                rows[ia] |= 1 << index[b]

        # Tarjan SCC (iterative) to handle cycles; process components in
        # reverse topological order so each row is final when consumed.
        sccs = self._tarjan(elements, index)
        closure = [0] * n
        # Tarjan emits components in reverse topological order already
        # (a component is completed only after everything it reaches).
        for comp in sccs:
            comp_mask = 0
            for node in comp:
                comp_mask |= 1 << node
            direct = 0
            for node in comp:
                direct |= rows[node]
            # Successors outside the component are already closed, so one
            # union per external successor finishes the reachability set.
            external = direct & ~comp_mask
            reach = external
            remaining = external
            while remaining:
                low = remaining & -remaining
                reach |= closure[low.bit_length() - 1]
                remaining &= remaining - 1
            # Inside a (non-trivial) cycle every member reaches every
            # member, including itself when the component has an internal
            # edge (size > 1, or an explicit self-loop).
            internal = 0
            if len(comp) > 1:
                internal = comp_mask
            else:
                node = comp[0]
                if rows[node] & (1 << node):
                    internal = comp_mask
            total = reach | internal
            for node in comp:
                closure[node] = total

        result = DictRelation(elements=elements)
        for i, element in enumerate(elements):
            mask = closure[i]
            while mask:
                low = mask & -mask
                j = low.bit_length() - 1
                result.add(element, elements[j])
                mask &= mask - 1
        return result

    def delta_closure(
        self,
        pairs: Iterable[Pair],
        elements: Iterable[Element] = (),
    ) -> "DictRelation":
        """Closure of ``self ∪ pairs`` for an **already closed** ``self``.

        The incremental counterpart of :meth:`transitive_closure`: instead
        of re-saturating every row, each inserted edge ``(a, b)`` unions
        ``b``'s (final) reachability row into the rows of ``a`` and of
        everything that reaches ``a`` — touching only rows whose
        reachability actually changes.  Rows are the same integer bitsets
        the from-scratch closure uses, with a transposed (predecessor)
        index so the affected rows are found without a scan.

        Precondition: ``self`` is transitively closed (the result of
        :meth:`transitive_closure` or a previous :meth:`delta_closure`,
        or a restriction of one — restriction preserves closedness).
        The reflexivity convention matches :meth:`transitive_closure`:
        ``x R x`` appears exactly when ``x`` lies on a cycle.

        ``elements`` extends the carrier set (isolated nodes the caller
        wants present); endpoints of ``pairs`` are added automatically.

        >>> base = DictRelation([("a", "b"), ("b", "c")]).transitive_closure()
        >>> inc = base.delta_closure([("c", "d")])
        >>> ("a", "d") in inc
        True
        >>> inc == DictRelation(
        ...     [("a", "b"), ("b", "c"), ("c", "d")]
        ... ).transitive_closure()
        True
        """
        order: Dict[Element, None] = dict(self._elements)
        staged = list(pairs)
        for element in elements:
            order.setdefault(element, None)
        for a, b in staged:
            order.setdefault(a, None)
            order.setdefault(b, None)
        carrier = list(order)
        index = {e: i for i, e in enumerate(carrier)}
        n = len(carrier)
        rows = [0] * n
        cols = [0] * n
        for a, bs in self._succ.items():
            ia = index[a]
            bit_a = 1 << ia
            mask = 0
            for b in bs:
                ib = index[b]
                mask |= 1 << ib
                cols[ib] |= bit_a
            rows[ia] = mask

        touched = 0
        for a, b in staged:
            ia, ib = index[a], index[b]
            if (rows[ia] >> ib) & 1:
                continue  # already implied — closure is unchanged
            succ_mask = rows[ib] | (1 << ib)
            affected = cols[ia] | (1 << ia)
            while affected:
                low = affected & -affected
                ix = low.bit_length() - 1
                affected &= affected - 1
                new = succ_mask & ~rows[ix]
                if not new:
                    continue
                touched += 1
                rows[ix] |= new
                bit_x = 1 << ix
                while new:
                    nl = new & -new
                    cols[nl.bit_length() - 1] |= bit_x
                    new &= new - 1
        CLOSURE_COUNTERS["calls"] += 1
        CLOSURE_COUNTERS["rows"] += touched

        result = DictRelation(elements=carrier)
        for i, element in enumerate(carrier):
            mask = rows[i]
            while mask:
                low = mask & -mask
                result.add(element, carrier[low.bit_length() - 1])
                mask &= mask - 1
        return result

    def add_closed(
        self,
        pairs: Iterable[Pair],
        elements: Iterable[Element] = (),
    ) -> int:
        """In-place :meth:`delta_closure`: insert ``pairs`` into an
        **already closed** relation and restore closedness, touching only
        rows whose reachability changes.

        This is the engine-facing variant — it never re-emits the
        unchanged part of the relation (the dominant cost of re-closing a
        dense observed order from scratch), because the predecessor index
        plays the role of the transposed bitset: in a closed relation
        ``predecessors(a)`` is exactly the set of rows an edge into ``a``
        can affect.  Returns the number of rows touched (also added to
        the module closure counters).
        """
        for element in elements:
            self.add_element(element)
        touched = 0
        for a, b in pairs:
            self.add_element(a)
            self.add_element(b)
            if b in self._succ.get(a, ()):
                continue  # already implied — closure is unchanged
            reach = set(self._succ.get(b, ()))
            reach.add(b)
            affected = set(self._pred.get(a, ()))
            affected.add(a)
            for x in affected:
                bucket = self._succ.setdefault(x, set())
                new = reach - bucket
                if not new:
                    continue
                touched += 1
                bucket |= new
                for y in new:
                    self._pred.setdefault(y, set()).add(x)
                self._size += len(new)
        CLOSURE_COUNTERS["calls"] += 1
        CLOSURE_COUNTERS["rows"] += touched
        return touched

    def _tarjan(self, elements: list, index: Dict[Element, int]):
        """Iterative Tarjan SCC over the indexed graph; components are
        emitted in reverse topological order."""
        n = len(elements)
        adjacency: List[List[int]] = [[] for _ in range(n)]
        for a, bs in self._succ.items():
            ia = index[a]
            for b in bs:
                adjacency[ia].append(index[b])
        index_counter = [0]
        lowlink = [0] * n
        number = [-1] * n
        on_stack = [False] * n
        stack: List[int] = []
        components: List[List[int]] = []

        for root in range(n):
            if number[root] != -1:
                continue
            work: List[Tuple[int, int]] = [(root, 0)]
            while work:
                node, child_pos = work[-1]
                if child_pos == 0:
                    number[node] = lowlink[node] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(node)
                    on_stack[node] = True
                advanced = False
                for pos in range(child_pos, len(adjacency[node])):
                    succ = adjacency[node][pos]
                    if number[succ] == -1:
                        work[-1] = (node, pos + 1)
                        work.append((succ, 0))
                        advanced = True
                        break
                    if on_stack[succ]:
                        lowlink[node] = min(lowlink[node], number[succ])
                if advanced:
                    continue
                work.pop()
                if lowlink[node] == number[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack[member] = False
                        component.append(member)
                        if member == node:
                            break
                    components.append(component)
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
        return components

    def _reachable_from(self, source: Element) -> Set[Element]:
        seen: Set[Element] = set()
        stack = list(self._succ.get(source, ()))
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._succ.get(node, ()))
        return seen

    def reaches(self, a: Element, b: Element) -> bool:
        """True if ``b`` is reachable from ``a`` through one or more pairs."""
        if a not in self._elements:
            return False
        return b in self._reachable_from(a)

    # ------------------------------------------------------------------
    # order-theoretic properties
    # ------------------------------------------------------------------
    def find_cycle(self) -> Optional[List[Element]]:
        """Return one directed cycle ``[a, ..., a]`` or ``None`` if acyclic.

        Iterative three-colour DFS (no recursion: histories can be deep).
        """
        WHITE, GREY, BLACK = 0, 1, 2
        colour: Dict[Element, int] = {e: WHITE for e in self._elements}
        parent: Dict[Element, Element] = {}
        for root in self._elements:
            if colour[root] != WHITE:
                continue
            stack: List[Tuple[Element, Iterator[Element]]] = [
                (root, iter(sorted(self._succ.get(root, ()), key=_sort_key)))
            ]
            colour[root] = GREY
            while stack:
                node, children = stack[-1]
                advanced = False
                for child in children:
                    if colour[child] == WHITE:
                        colour[child] = GREY
                        parent[child] = node
                        stack.append(
                            (
                                child,
                                iter(
                                    sorted(
                                        self._succ.get(child, ()),
                                        key=_sort_key,
                                    )
                                ),
                            )
                        )
                        advanced = True
                        break
                    if colour[child] == GREY:
                        # Found a back edge node -> child; unwind the path.
                        cycle = [child]
                        cursor = node
                        while cursor != child:
                            cycle.append(cursor)
                            cursor = parent[cursor]
                        cycle.append(child)
                        cycle.reverse()
                        return cycle
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()
        return None

    def is_acyclic(self) -> bool:
        """True if the relation, viewed as a digraph, has no cycle."""
        return self.find_cycle() is None

    def is_irreflexive(self) -> bool:
        """True if no element is related to itself."""
        return all(a not in self._succ.get(a, ()) for a in self._elements)

    def is_transitive(self) -> bool:
        """True if ``a R b`` and ``b R c`` imply ``a R c``."""
        for a, bs in self._succ.items():
            for b in bs:
                for c in self._succ.get(b, ()):
                    if c not in self._succ.get(a, ()):
                        return False
        return True

    def is_strict_partial_order(self) -> bool:
        """True if the relation is irreflexive and acyclic.

        (An acyclic relation always has an irreflexive, transitive
        extension — its transitive closure — so this is the useful test
        for "can serve as a strict partial order".)
        """
        return self.is_irreflexive() and self.is_acyclic()

    def is_total_over(self, elements: Iterable[Element]) -> bool:
        """True if every distinct pair from ``elements`` is ordered."""
        pool = list(elements)
        for i, a in enumerate(pool):
            for b in pool[i + 1:]:
                if a != b and not self.orders(a, b):
                    return False
        return True

    # ------------------------------------------------------------------
    # linearization
    # ------------------------------------------------------------------
    def topological_sort(self) -> List[Element]:
        """A linear extension of the relation over its carrier set.

        Raises :class:`CycleError` (with a witness) when cyclic.  Ties
        are broken by carrier insertion order, which makes results
        deterministic across runs.
        """
        in_degree: Dict[Element, int] = {e: 0 for e in self._elements}
        for a, bs in self._succ.items():
            for b in bs:
                in_degree[b] += 1
        queue: List[Element] = [e for e in self._elements if in_degree[e] == 0]
        order: List[Element] = []
        head = 0
        position = {e: i for i, e in enumerate(self._elements)}
        while head < len(queue):
            # Pick the smallest-position ready element for determinism.
            best = min(range(head, len(queue)), key=lambda i: position[queue[i]])
            queue[head], queue[best] = queue[best], queue[head]
            node = queue[head]
            head += 1
            order.append(node)
            for child in sorted(self._succ.get(node, ()), key=_sort_key):
                in_degree[child] -= 1
                if in_degree[child] == 0:
                    queue.append(child)
        if len(order) != len(self._elements):
            cycle = self.find_cycle()
            assert cycle is not None
            raise CycleError("relation is not linearizable", cycle)
        return order

    def all_topological_sorts(
        self, limit: Optional[int] = None
    ) -> Iterator[List[Element]]:
        """Enumerate every linear extension (optionally at most ``limit``).

        Exponential in general — used only by the brute-force oracle that
        cross-validates Theorem 1 on tiny instances.
        """
        elements = list(self._elements)
        in_degree: Dict[Element, int] = {e: 0 for e in elements}
        for a, bs in self._succ.items():
            for b in bs:
                in_degree[b] += 1
        emitted = 0
        prefix: List[Element] = []

        def backtrack() -> Iterator[List[Element]]:
            nonlocal emitted
            if limit is not None and emitted >= limit:
                return
            if len(prefix) == len(elements):
                emitted += 1
                yield list(prefix)
                return
            for node in elements:
                if in_degree[node] == 0 and node not in taken:
                    taken.add(node)
                    prefix.append(node)
                    for child in self._succ.get(node, ()):
                        in_degree[child] -= 1
                    yield from backtrack()
                    for child in self._succ.get(node, ()):
                        in_degree[child] += 1
                    prefix.pop()
                    taken.remove(node)
                    if limit is not None and emitted >= limit:
                        return

        taken: Set[Element] = set()
        yield from backtrack()


def _sort_key(element: Element) -> Tuple[str, str]:
    """Deterministic sort key for heterogeneous hashables."""
    return (type(element).__name__, str(element))


def find_cycle_in_union(
    relations: Iterable["DictRelation"],
    *,
    skip_self_loops: bool = False,
) -> Optional[List[Element]]:
    """One directed cycle of ``⋃ relations``, without materializing it.

    Behaviourally identical to ``relations[0].union(*relations[1:])``
    followed by :meth:`DictRelation.find_cycle` (same carrier order, same
    successor sort, hence the same witness cycle) — but it never copies
    the relations, which for the checker's dense closed observed orders
    is the dominant cost of the Def.-13 consistency test.  With
    ``skip_self_loops`` reflexive pairs are ignored, matching the
    self-loop discard of :meth:`repro.core.front.Front.consistency_violation`.
    """
    pool = list(relations)
    order: Dict[Element, None] = {}
    for relation in pool:
        for element in relation._elements:
            order.setdefault(element, None)

    def successors(node: Element) -> List[Element]:
        buckets = [b for b in (r._succ.get(node) for r in pool) if b]
        if not buckets:
            return []
        merged = buckets[0] if len(buckets) == 1 else set().union(*buckets)
        out = sorted(merged, key=_sort_key)
        if skip_self_loops and node in merged:
            out = [child for child in out if child != node]
        return out

    WHITE, GREY, BLACK = 0, 1, 2
    colour: Dict[Element, int] = {e: WHITE for e in order}
    parent: Dict[Element, Element] = {}
    for root in order:
        if colour[root] != WHITE:
            continue
        stack: List[Tuple[Element, Iterator[Element]]] = [
            (root, iter(successors(root)))
        ]
        colour[root] = GREY
        while stack:
            node, children = stack[-1]
            advanced = False
            for child in children:
                if colour[child] == WHITE:
                    colour[child] = GREY
                    parent[child] = node
                    stack.append((child, iter(successors(child))))
                    advanced = True
                    break
                if colour[child] == GREY:
                    cycle = [child]
                    cursor = node
                    while cursor != child:
                        cycle.append(cursor)
                        cursor = parent[cursor]
                    cycle.append(child)
                    cycle.reverse()
                    return cycle
            if not advanced:
                colour[node] = BLACK
                stack.pop()
    return None


def total_order_from_sequence(sequence: Iterable[Element]) -> DictRelation:
    """Build the total order induced by a sequence (adjacent pairs only;
    take the transitive closure when the full order matters)."""
    relation = DictRelation()
    previous: Optional[Element] = None
    first = True
    for element in sequence:
        relation.add_element(element)
        if not first:
            relation.add(previous, element)
        previous = element
        first = False
    return relation
