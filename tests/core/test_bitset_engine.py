"""Differential tests pinning the bitset Relation engine to the old one.

The packed-bitset rewrite of :class:`repro.core.orders.Relation` must be
observationally identical to the dict-of-sets engine it replaced — same
pairs, same iteration order, same witnesses, same closure-counter
telemetry.  Three layers of evidence:

* a hypothesis property drives random operation sequences through both
  engines (the old one lives on as :class:`tests.core.dict_engine.DictRelation`)
  and compares every observable after every step;
* the golden-engine fixture replays seven recorded workloads and
  compares narratives, verdicts, closure counters and canonical
  telemetry byte-for-byte against outputs captured from the pre-rewrite
  engine;
* Comp-C verdicts of the incremental and from-scratch reductions are
  property-checked to agree on random workloads.

Plus the two satellite regressions (unhashability, ``restricted_to``
carrier validation) and the perf-shape guard (incremental closure rows
strictly below from-scratch rows on the P2 speedup grid).
"""

import json
from collections.abc import Hashable
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.scaling import closure_path_speedup, incremental_speedup
from repro.core.orders import (
    Relation,
    closure_counters,
    reset_closure_counters,
)
from repro.core.reduction import reduce_to_roots
from repro.obs import Telemetry, canonical_dumps, to_record
from repro.workloads.generator import WorkloadConfig, generate
from repro.workloads.topologies import (
    fork_topology,
    join_topology,
    random_dag_topology,
    stack_topology,
    tree_topology,
)
from tests.core import dict_engine

FIXTURE = Path(__file__).parent / "fixtures" / "golden_engine.json"

ELEMENTS = ["a", "b", "c", "d", "e", "f", "g"]

_pair = st.tuples(st.sampled_from(ELEMENTS), st.sampled_from(ELEMENTS))

_op = st.one_of(
    st.tuples(st.just("add"), _pair),
    st.tuples(st.just("discard"), _pair),
    st.tuples(st.just("add_element"), st.sampled_from(ELEMENTS)),
    st.tuples(st.just("close"), st.none()),
    st.tuples(
        st.just("restrict"),
        st.lists(st.sampled_from(ELEMENTS), unique=True),
    ),
    st.tuples(st.just("mapped"), st.integers(min_value=1, max_value=3)),
    st.tuples(st.just("inverse"), st.none()),
    st.tuples(
        st.just("union"),
        st.lists(_pair, max_size=6),
    ),
    st.tuples(
        st.just("delta"),
        st.lists(_pair, max_size=5),
    ),
)


def _observe(new: Relation, old: "dict_engine.DictRelation") -> None:
    """Every cheap observable must agree between the engines."""
    assert list(new.elements) == list(old.elements)
    assert list(new.pairs()) == list(old.pairs())
    assert len(new) == len(old)
    assert new.is_transitive() == old.is_transitive()
    assert new.is_acyclic() == old.is_acyclic()
    assert new.find_cycle() == old.find_cycle()
    if new.is_acyclic():
        assert new.topological_sort() == old.topological_sort()
    for probe in ELEMENTS[:3]:
        assert new.successors(probe) == old.successors(probe)
        assert new.predecessors(probe) == old.predecessors(probe)


@settings(max_examples=120, deadline=None)
@given(ops=st.lists(_op, max_size=25))
def test_differential_operation_sequences(ops):
    new = Relation()
    old = dict_engine.DictRelation()
    for name, arg in ops:
        if name == "add":
            new.add(*arg)
            old.add(*arg)
        elif name == "discard":
            new.discard(*arg)
            old.discard(*arg)
        elif name == "add_element":
            new.add_element(arg)
            old.add_element(arg)
        elif name == "close":
            new = new.transitive_closure()
            old = old.transitive_closure()
        elif name == "restrict":
            keep = [e for e in arg if e in set(new.elements)]
            new = new.restricted_to(keep)
            old = old.restricted_to(keep)
        elif name == "mapped":
            buckets = arg

            def rep(e, buckets=buckets):
                return ELEMENTS[ELEMENTS.index(e) % buckets]

            new = new.mapped(rep)
            old = old.mapped(rep)
        elif name == "inverse":
            new = new.inverse()
            old = old.inverse()
        elif name == "union":
            new = new.union(Relation(arg))
            old = old.union(dict_engine.DictRelation(arg))
        elif name == "delta":
            new = new.transitive_closure().delta_closure(arg)
            old = old.transitive_closure().delta_closure(arg)
        _observe(new, old)


@settings(max_examples=25, deadline=None)
@given(
    depth=st.integers(min_value=2, max_value=3),
    roots=st.integers(min_value=2, max_value=5),
    seed=st.integers(min_value=0, max_value=40),
    rate=st.floats(min_value=0.0, max_value=0.3),
    layout=st.sampled_from(["serial", "random", "perturbed"]),
)
def test_compc_verdicts_match_across_engines(depth, roots, seed, rate, layout):
    """Both reduction engines must tell the byte-identical Comp-C story
    on arbitrary workloads — the incremental closure path may not change
    a single verdict, front or witness."""
    recorded = generate(
        stack_topology(depth),
        WorkloadConfig(
            seed=seed,
            roots=roots,
            conflict_probability=rate,
            layout=layout,
        ),
    )
    scratch = reduce_to_roots(recorded.system, incremental=False)
    incremental = reduce_to_roots(recorded.system, incremental=True)
    assert scratch.succeeded == incremental.succeeded
    assert scratch.narrative() == incremental.narrative()


GOLDEN_SPECS = [
    ("stack3-serial", lambda: stack_topology(3), dict(seed=0, roots=4, conflict_probability=0.05, layout="serial")),
    ("stack4-random", lambda: stack_topology(4), dict(seed=3, roots=5, conflict_probability=0.08, layout="random")),
    ("stack5-serial", lambda: stack_topology(5), dict(seed=1, roots=6, conflict_probability=0.02, layout="serial")),
    ("dag5-serial", lambda: random_dag_topology(5, 3, seed=2), dict(seed=1, roots=6, conflict_probability=0.03, layout="serial")),
    ("tree5-perturbed", lambda: tree_topology(5, 2), dict(seed=7, roots=4, conflict_probability=0.04, layout="perturbed")),
    ("fork-random", lambda: fork_topology(3), dict(seed=11, roots=6, conflict_probability=0.2, layout="random")),
    ("join-perturbed", lambda: join_topology(3), dict(seed=5, roots=6, conflict_probability=0.3, layout="perturbed")),
]


@pytest.mark.parametrize("name,topo,cfg", GOLDEN_SPECS, ids=[s[0] for s in GOLDEN_SPECS])
def test_golden_engine_fixture(name, topo, cfg):
    """Replay the recorded workloads; every observable — narrative,
    verdict, closure counters, canonical telemetry — must be
    byte-identical to the pre-rewrite engine's captured output."""
    golden = json.loads(FIXTURE.read_text())[name]
    recorded = generate(topo(), WorkloadConfig(**cfg))
    for mode, incremental in (("scratch", False), ("incremental", True)):
        expected = golden[mode]
        reset_closure_counters()
        telemetry = Telemetry()
        result = reduce_to_roots(
            recorded.system, incremental=incremental, telemetry=telemetry
        )
        counters = closure_counters()
        canon = canonical_dumps(
            [to_record(e) for e in telemetry.collect()]
        )
        assert result.succeeded == expected["succeeded"], mode
        assert result.narrative() == expected["narrative"], mode
        assert counters["calls"] == expected["closure_calls"], mode
        assert counters["rows"] == expected["closure_rows"], mode
        assert canon == expected["telemetry"], mode


def test_relation_is_not_hashable():
    """Mutable + ``__eq__`` ⇒ ``__hash__ = None``: the ABC must agree."""
    relation = Relation([("a", "b")])
    assert not isinstance(relation, Hashable)
    with pytest.raises(TypeError):
        hash(relation)


def test_restricted_to_validates_carrier():
    relation = Relation([("a", "b"), ("b", "c")])
    with pytest.raises(ValueError, match="carrier is missing"):
        relation.restricted_to(["a", "b"], carrier=["a"])
    # A carrier covering every kept element is fine, extras get empty rows.
    restricted = relation.restricted_to(["a", "b"], carrier=["a", "b", "z"])
    assert list(restricted.pairs()) == [("a", "b")]
    assert "z" in restricted.elements


def test_incremental_rows_strictly_below_scratch_on_p2_grid():
    """Perf-shape guard: the deterministic closure-row counts must show
    the incremental engine touching strictly less state at every P2
    speedup point."""
    for point in incremental_speedup(repeats=1):
        assert point.verdicts_match, point.label
        assert point.incremental_rows < point.scratch_rows, point.label


def test_streaming_closure_paths_agree():
    """The closure-path benchmark's two strategies must produce equal
    relations at every depth (the speedup itself is benchmarked, not
    asserted, here — wall clock is for BENCH_P2)."""
    points = closure_path_speedup(depths=(2, 3), repeats=1)
    assert [p.depth for p in points] == [2, 3]
    for p in points:
        assert p.pairs > 0
