"""Property tests for the incremental-closure machinery.

The incremental reduction engine stands on three facts pinned here
(DESIGN.md lists them as the incremental-closure invariants):

1. ``delta_closure`` / ``add_closed`` on a closed relation equal the
   from-scratch closure of the union with the delta;
2. the restriction of a transitively closed relation is closed, and
   ``restricted_to``'s explicit-carrier form preserves the caller's
   carrier order;
3. the incremental engine's per-level fronts are *identical* — not just
   equivalent — to the from-scratch engine's, so every downstream
   narrative and verdict is byte-for-byte unchanged.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.orders import Relation
from repro.core.reduction import reduce_to_roots
from repro.testing import recorded_executions

ELEMENTS = [f"e{i}" for i in range(10)]

pair_lists = st.lists(
    st.tuples(st.sampled_from(ELEMENTS), st.sampled_from(ELEMENTS)),
    max_size=25,
)


def closed_relations():
    return pair_lists.map(
        lambda pairs: Relation(pairs, elements=ELEMENTS).transitive_closure()
    )


class TestDeltaClosure:
    @given(closed_relations(), pair_lists)
    @settings(max_examples=100, deadline=None)
    def test_delta_closure_matches_from_scratch(self, closed, delta):
        incremental = closed.delta_closure(delta)
        scratch = closed.union(
            Relation(delta, elements=ELEMENTS)
        ).transitive_closure()
        assert incremental == scratch

    @given(closed_relations(), pair_lists)
    @settings(max_examples=100, deadline=None)
    def test_add_closed_matches_from_scratch(self, closed, delta):
        scratch = closed.union(
            Relation(delta, elements=ELEMENTS)
        ).transitive_closure()
        closed.add_closed(delta)
        assert closed == scratch

    @given(closed_relations(), pair_lists)
    @settings(max_examples=50, deadline=None)
    def test_delta_closure_with_new_elements(self, closed, delta):
        fresh = ["n0", "n1"]
        delta = delta + [("n0", "n1"), (ELEMENTS[0], "n0")]
        incremental = closed.delta_closure(delta, elements=fresh)
        scratch = closed.union(
            Relation(delta, elements=ELEMENTS + fresh)
        ).transitive_closure()
        assert incremental == scratch

    @given(closed_relations())
    @settings(max_examples=50, deadline=None)
    def test_empty_delta_is_identity(self, closed):
        assert closed.delta_closure([]) == closed


class TestRestriction:
    @given(closed_relations(), st.sets(st.sampled_from(ELEMENTS)))
    @settings(max_examples=100, deadline=None)
    def test_restriction_of_closed_is_closed(self, closed, keep):
        restricted = closed.restricted_to(keep)
        assert restricted == restricted.transitive_closure()

    @given(pair_lists, st.sets(st.sampled_from(ELEMENTS)))
    @settings(max_examples=100, deadline=None)
    def test_restriction_keeps_exactly_internal_pairs(self, pairs, keep):
        relation = Relation(pairs, elements=ELEMENTS)
        restricted = relation.restricted_to(keep)
        expected = {(a, b) for a, b in pairs if a in keep and b in keep}
        assert set(restricted.pairs()) == expected
        assert set(restricted.elements) == keep

    @given(pair_lists, st.sets(st.sampled_from(ELEMENTS)))
    @settings(max_examples=50, deadline=None)
    def test_explicit_carrier_sets_element_order(self, pairs, keep):
        relation = Relation(pairs, elements=ELEMENTS)
        carrier = [e for e in ELEMENTS if e in keep] + ["extra"]
        restricted = relation.restricted_to(keep, carrier=carrier)
        assert list(restricted.elements) == carrier
        assert restricted.successors("extra") == set()


class TestEngineEquivalence:
    @given(recorded_executions(kinds=("stack", "fork", "join", "dag")))
    @settings(max_examples=40, deadline=None)
    def test_incremental_engine_is_byte_identical(self, recorded):
        system = recorded.system
        incremental = reduce_to_roots(system, incremental=True)
        scratch = reduce_to_roots(system, incremental=False)
        assert incremental.succeeded == scratch.succeeded
        assert len(incremental.fronts) == len(scratch.fronts)
        for fi, fs in zip(incremental.fronts, scratch.fronts):
            assert fi.nodes == fs.nodes
            # pairs() iteration is canonical, so demand identical
            # *sequences*, not merely equal sets: narratives and traces
            # print in this order.
            assert list(fi.observed.pairs()) == list(fs.observed.pairs())
            assert list(fi.input_weak.pairs()) == list(fs.input_weak.pairs())
            assert list(fi.input_strong.pairs()) == list(
                fs.input_strong.pairs()
            )
        assert incremental.witnesses == scratch.witnesses
        if incremental.succeeded:
            assert incremental.serial_order() == scratch.serial_order()

    @given(recorded_executions(kinds=("stack", "dag")))
    @settings(max_examples=20, deadline=None)
    def test_incremental_engine_does_less_closure_work(self, recorded):
        system = recorded.system
        incremental = reduce_to_roots(system, incremental=True)
        scratch = reduce_to_roots(system, incremental=False)
        assert (
            incremental.profile_totals()["closure_rows"]
            <= scratch.profile_totals()["closure_rows"]
        )
