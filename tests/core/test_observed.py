"""Unit tests for the observed order: seeding, pull-up, the meeting gate."""

from repro.core.builder import SystemBuilder
from repro.core.observed import (
    ObservedOrderOptions,
    observed_between_trees,
    pull_up,
    seed_observed_pairs,
)
from repro.core.orders import Relation
from repro.core.reduction import reduce_to_roots


def two_level(top_conflicts=(), db_exec=("x", "y"), top_exec=("u", "v")):
    b = SystemBuilder()
    b.transaction("T1", "Top", ["u"]).transaction("T2", "Top", ["v"])
    for a, c in top_conflicts:
        b.conflict("Top", a, c)
    b.executed("Top", list(top_exec))
    b.transaction("u", "DB", ["x"]).transaction("v", "DB", ["y"])
    b.conflict("DB", "x", "y")
    b.executed("DB", list(db_exec))
    return b.build()


class TestSeeding:
    def test_conflicting_ordered_leaves_are_seeded(self):
        sys = two_level()
        pairs = set(seed_observed_pairs(sys, ["x", "y"]))
        assert pairs == {("x", "y")}

    def test_non_conflicting_pairs_not_seeded(self):
        b = SystemBuilder()
        b.transaction("T1", "S", ["a"]).transaction("T2", "S", ["b"])
        b.executed("S", ["a", "b"])
        sys = b.build()
        assert set(seed_observed_pairs(sys, ["a", "b"])) == set()

    def test_seed_leaf_order_option_restores_def_10_1(self):
        b = SystemBuilder()
        b.transaction("T1", "S", ["a"]).transaction("T2", "S", ["b"])
        b.executed("S", ["a", "b"], mode="temporal")
        sys = b.build()
        opts = ObservedOrderOptions(seed_leaf_order=True)
        assert ("a", "b") in set(seed_observed_pairs(sys, ["a", "b"], opts))

    def test_seeding_only_considers_materialized_nodes(self):
        sys = two_level(top_conflicts=[("u", "v")])
        # u, v are transactions of DB: conflicting at Top, ordered there.
        pairs = set(seed_observed_pairs(sys, ["u", "v"]))
        assert ("u", "v") in pairs
        # but asking only about leaves does not leak the upper pair
        assert ("u", "v") not in set(seed_observed_pairs(sys, ["x", "y"]))

    def test_roots_never_seed(self):
        sys = two_level(top_conflicts=[("u", "v")])
        assert set(seed_observed_pairs(sys, ["T1", "T2"])) == set()


class TestPullUp:
    def test_pair_rewritten_to_parents(self):
        sys = two_level(top_conflicts=[("u", "v")])
        obs = Relation([("x", "y")])
        rep = {"x": "u", "y": "v"}
        lifted = pull_up(sys, obs, lambda n: rep.get(n, n))
        assert ("u", "v") in lifted

    def test_conflicting_pair_propagates_regardless_of_parents(self):
        # Def. 10.2: x, y conflict at DB, so the pair climbs to (u, v)
        # even though Top declares u, v non-conflicting.
        sys = two_level()
        obs = Relation([("x", "y")])
        rep = {"x": "u", "y": "v"}
        lifted = pull_up(sys, obs, lambda n: rep.get(n, n))
        assert ("u", "v") in lifted

    def test_forgetting_gate_blocks_commuting_endpoints(self):
        # A transitivity-derived pair between *non-conflicting* operations
        # of one schedule is forgotten when pulled past that schedule
        # (§3.7): DB vouches that x and z commute.
        b = SystemBuilder()
        b.transaction("T1", "Top", ["u"]).transaction("T2", "Top", ["v"])
        b.transaction("u", "DB", ["x"]).transaction("v", "DB", ["z"])
        b.executed("Top", ["u", "v"]).executed("DB", ["x", "z"])
        sys = b.build()
        obs = Relation([("x", "z")])  # e.g. closed through a third node
        rep = {"x": "u", "z": "v"}
        lifted = pull_up(sys, obs, lambda n: rep.get(n, n))
        assert ("u", "v") not in lifted

    def test_meeting_gate_can_be_disabled(self):
        b = SystemBuilder()
        b.transaction("T1", "Top", ["u"]).transaction("T2", "Top", ["v"])
        b.transaction("u", "DB", ["x"]).transaction("v", "DB", ["z"])
        b.executed("Top", ["u", "v"]).executed("DB", ["x", "z"])
        sys = b.build()
        obs = Relation([("x", "z")])
        rep = {"x": "u", "z": "v"}
        opts = ObservedOrderOptions(forget_nonconflicting=False)
        lifted = pull_up(sys, obs, lambda n: rep.get(n, n), opts)
        assert ("u", "v") in lifted

    def test_internal_pairs_vanish(self):
        sys = two_level()
        obs = Relation([("x", "y")])
        lifted = pull_up(sys, obs, lambda n: "u")
        assert len(lifted) == 0

    def test_untouched_pairs_carried_verbatim(self):
        sys = two_level()
        obs = Relation([("x", "y")])
        lifted = pull_up(sys, obs, lambda n: n)
        assert ("x", "y") in lifted

    def test_mixed_rewrite_keeps_cross_schedule_pair(self):
        # One endpoint grouped, the other not: endpoints land on different
        # schedules, so the pair is kept pessimistically (Def. 10.3).
        b = SystemBuilder()
        b.transaction("T1", "TopA", ["u"])
        b.transaction("T2", "TopB", ["w"])
        b.executed("TopA", ["u"])
        b.executed("TopB", ["w"])
        b.transaction("u", "Mid", ["x"])
        b.executed("Mid", ["x"])
        b.transaction("x", "Low", ["p"])
        b.transaction("w", "Low", ["q"])
        b.conflict("Low", "p", "q")
        b.executed("Low", ["p", "q"])
        sys = b.build()
        # x was grouped into u (an operation of Mid); w is an operation of
        # TopB — no common schedule, pair survives.
        obs = Relation([("x", "w")])
        rep = {"x": "u"}
        lifted = pull_up(sys, obs, lambda n: rep.get(n, n))
        assert ("u", "w") in lifted

    def test_mixed_rewrite_gates_on_old_endpoints(self):
        # The endpoints p (operation of Low) and q (operation of Low) are
        # non-conflicting at Low, so a derived pair between them is
        # forgotten even when only one side is being grouped.
        b = SystemBuilder()
        b.transaction("T1", "Top", ["u", "w"])
        b.executed("Top", ["u", "w"])
        b.transaction("u", "Low", ["p"])
        b.transaction("w", "Low", ["q"])
        b.executed("Low", ["p", "q"])
        sys = b.build()
        obs = Relation([("p", "q")])
        rep = {"p": "u"}
        lifted = pull_up(sys, obs, lambda n: rep.get(n, n))
        assert ("u", "q") not in lifted


class TestObservedBetweenTrees:
    def test_detects_cross_tree_relation(self):
        sys = two_level(top_conflicts=[("u", "v")])
        result = reduce_to_roots(sys)
        front1 = result.fronts[1]
        assert observed_between_trees(sys, front1.observed, "T1", "T2")

    def test_no_relation_when_independent(self):
        b = SystemBuilder()
        b.transaction("T1", "S", ["a"]).transaction("T2", "S", ["b"])
        b.executed("S", ["a", "b"])
        sys = b.build()
        obs = Relation(elements=("a", "b"))
        assert not observed_between_trees(sys, obs, "T1", "T2")
