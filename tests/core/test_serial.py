"""Unit tests for serial fronts and Def. 18–20 containment."""

import pytest

from repro.core.front import Front
from repro.core.orders import Relation
from repro.core.reduction import reduce_to_roots
from repro.core.serial import (
    check_containment,
    level_equivalent,
    serial_execution_order,
    serial_front_of,
    verify_theorem1_if_direction,
)
from repro.exceptions import ReductionError
from repro.figures import figure1_system, figure3_system, figure4_system


def front(nodes, obs=(), weak=(), strong=(), level=1):
    return Front(
        level=level,
        nodes=tuple(nodes),
        observed=Relation(obs, elements=nodes),
        input_weak=Relation(weak, elements=nodes),
        input_strong=Relation(strong, elements=nodes),
    )


class TestLevelEquivalence:
    def test_identical_fronts_equivalent(self):
        a = front(["x", "y"], obs=[("x", "y")])
        b = front(["x", "y"], obs=[("x", "y")], level=2)
        assert level_equivalent(a, b)  # levels may differ (Def. 18)

    def test_different_observed_not_equivalent(self):
        a = front(["x", "y"], obs=[("x", "y")])
        b = front(["x", "y"])
        assert not level_equivalent(a, b)


class TestContainment:
    def test_serial_front_contains_reduced_front(self):
        result = reduce_to_roots(figure1_system())
        serial = serial_front_of(result)
        check = check_containment(result.final_front, serial)
        assert check
        assert check.reasons == []

    def test_mismatched_nodes_fail(self):
        a = front(["x"])
        b = front(["x", "y"], strong=[("x", "y")], weak=[("x", "y")])
        assert not check_containment(a, b)

    def test_missing_order_fails(self):
        a = front(["x", "y"], obs=[("y", "x")])
        serial = front(
            ["x", "y"], strong=[("x", "y")], weak=[("x", "y")]
        )
        check = check_containment(a, serial)
        assert not check
        assert any("observed" in r for r in check.reasons)


class TestTheorem1Constructive:
    def test_if_direction_on_accepted_executions(self):
        for system in (figure1_system(), figure4_system()):
            result = reduce_to_roots(system)
            check = verify_theorem1_if_direction(result)
            assert check, check.reasons

    def test_serial_front_of_failure_raises(self):
        result = reduce_to_roots(figure3_system())
        with pytest.raises(ReductionError):
            serial_front_of(result)

    def test_serial_execution_order(self):
        assert serial_execution_order(reduce_to_roots(figure3_system())) is None
        order = serial_execution_order(reduce_to_roots(figure4_system()))
        assert sorted(order) == ["T1", "T2"]
