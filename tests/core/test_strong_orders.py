"""End-to-end tests for *strong* orders (Def. 1's ``<<``).

The figures and the random generator exercise weak orders; these tests
cover the strong machinery: strong intra-transaction orders (axiom 2b),
strong input orders (axiom 3 and its Def.-4.7 cascade), and their role
in the reduction (strong input pairs always constrain calculations and
must embed in the serial witness)."""

import pytest

from repro.core.builder import SystemBuilder
from repro.core.correctness import check_composite_correctness
from repro.core.reduction import reduce_to_roots
from repro.exceptions import CycleError, ModelError, ScheduleAxiomError


def two_roots(strong_pair=None, exec_top=("u", "v"), exec_db=("x", "y")):
    b = SystemBuilder()
    b.transaction("T1", "Top", ["u"])
    b.transaction("T2", "Top", ["v"])
    if strong_pair:
        b.strong_input("Top", *strong_pair)
    b.executed("Top", list(exec_top))
    b.transaction("u", "DB", ["x"])
    b.transaction("v", "DB", ["y"])
    b.conflict("DB", "x", "y")
    b.executed("DB", list(exec_db))
    return b


class TestStrongInputAtTheTop:
    def test_strong_input_respected(self):
        sys = two_roots(("T1", "T2")).build()
        report = check_composite_correctness(sys)
        assert report.correct
        assert report.serial_witness == ["T1", "T2"]

    def test_strong_input_appears_in_final_front(self):
        sys = two_roots(("T1", "T2")).build()
        final = reduce_to_roots(sys).final_front
        assert ("T1", "T2") in final.input_strong

    def test_contradicting_execution_rejected_at_validation(self):
        # Strong input T2 << T1 while everything ran T1-then-T2: axiom 3
        # demands x strongly after y, which the execution contradicts.
        with pytest.raises((ScheduleAxiomError, CycleError)):
            two_roots(("T2", "T1")).build()

    def test_contradicting_observed_order_rejected_by_checker(self):
        # Rogue DB: the client required T2 strongly before T1 (and the
        # Top schedule honoured it), but the DB serialized the
        # conflicting work T1-first.  With propagation and validation
        # off (the rogue DB never received/checked its obligations), the
        # checker still rejects: the pulled-up order contradicts the
        # Top-level commitment.
        b = SystemBuilder()
        b.transaction("T1", "Top", ["u"])
        b.transaction("T2", "Top", ["v"])
        b.conflict("Top", "u", "v")
        b.strong_input("Top", "T2", "T1")
        b.executed("Top", ["v", "u"])  # Top honoured the strong input
        b.transaction("u", "DB", ["x"])
        b.transaction("v", "DB", ["y"])
        b.conflict("DB", "x", "y")
        b.executed("DB", ["x", "y"])  # ...the DB did not
        sys = b.build(validate=False, propagate_orders=False)
        assert not check_composite_correctness(sys).correct

    def test_two_root_serial_front_is_serial(self):
        sys = two_roots(("T1", "T2")).build()
        result = reduce_to_roots(sys)
        serial = result.final_front.as_serial_front()
        assert serial.is_serial()


class TestStrongIntraOrders:
    def test_strong_intra_cascades_to_callees(self):
        b = SystemBuilder()
        b.transaction("T1", "Top", ["u", "v"], strong_order=[("u", "v")])
        b.executed("Top", ["u", "v"])
        b.transaction("u", "DB", ["x"])
        b.transaction("v", "DB", ["y"])
        b.executed("DB", ["x", "y"])
        sys = b.build()
        assert ("u", "v") in sys.schedule("DB").strong_input
        assert ("x", "y") in sys.schedule("DB").strong_output
        assert check_composite_correctness(sys).correct

    def test_strong_intra_violation_refused(self):
        b = SystemBuilder()
        b.transaction("T1", "Top", ["u", "v"], strong_order=[("u", "v")])
        b.executed("Top", ["u", "v"])
        b.transaction("u", "DB", ["x"])
        b.transaction("v", "DB", ["y"])
        # DB ran y before x although u << v sequences every pair.
        b.strong_output("DB", "y", "x")
        b.executed("DB", ["y", "x"])
        with pytest.raises((ScheduleAxiomError, CycleError, ModelError)):
            b.build()

    def test_sequential_transactions_end_to_end(self):
        b = SystemBuilder()
        b.transaction("T1", "Top", ["u", "v"], sequential=True)
        b.transaction("T2", "Top", ["w"])
        b.conflict("Top", "u", "w")
        b.conflict("Top", "w", "v")
        b.executed("Top", ["u", "w", "v"])
        b.transaction("u", "DB", ["x1"])
        b.transaction("v", "DB", ["x2"])
        b.transaction("w", "DB", ["x3"])
        b.conflict("DB", "x1", "x3")
        b.conflict("DB", "x3", "x2")
        b.executed("DB", ["x1", "x3", "x2"])
        sys = b.build()
        # w is wedged between u and v, which conflict with it at the Top
        # level: T1 cannot be isolated.
        assert not check_composite_correctness(sys).correct


class TestStrongConstraintsInCalculations:
    def test_strong_input_between_subtransactions_constrains(self):
        # Two subtransactions of different roots with a strong input at
        # the DB, no conflicts anywhere: the strong order alone forces
        # the serial witness direction.
        b = SystemBuilder()
        b.transaction("T1", "Top", ["u"])
        b.transaction("T2", "Top", ["v"])
        b.strong_input("Top", "T1", "T2")
        b.executed("Top", ["u", "v"])
        b.transaction("u", "DB", ["x"])
        b.transaction("v", "DB", ["y"])
        b.executed("DB", ["x", "y"])
        sys = b.build()
        result = reduce_to_roots(sys)
        assert result.succeeded
        witness = result.serial_order()
        assert witness.index("T1") < witness.index("T2")
