"""Edge-case and error-path coverage across the core."""

import pytest

from repro.core.builder import SystemBuilder
from repro.core.orders import Relation
from repro.core.reduction import ReductionResult, reduce_to_roots
from repro.core.observed import ObservedOrderOptions
from repro.exceptions import (
    CompositeTxError,
    CycleError,
    ModelError,
    ParseError,
    ReductionError,
    ScheduleAxiomError,
    SimulationError,
    WorkloadError,
)
from repro.figures import figure1_system


class TestExceptionHierarchy:
    def test_all_derive_from_base(self):
        for exc in (
            ModelError,
            CycleError,
            ScheduleAxiomError,
            ReductionError,
            SimulationError,
            WorkloadError,
            ParseError,
        ):
            assert issubclass(exc, CompositeTxError)

    def test_cycle_error_carries_witness(self):
        err = CycleError("boom", ["a", "b", "a"])
        assert err.cycle == ["a", "b", "a"]
        assert "a -> b -> a" in str(err)

    def test_axiom_error_carries_axiom(self):
        err = ScheduleAxiomError("1c", "details")
        assert err.axiom == "1c"
        assert "1c" in str(err)

    def test_parse_error_location(self):
        assert ParseError("bad", line=7).line == 7
        assert "line 7" in str(ParseError("bad", line=7))
        assert ParseError("bad").line is None


class TestRelationEdgeCases:
    def test_heterogeneous_elements_sort_deterministically(self):
        r = Relation(elements=[2, "a", 1, "b"])
        assert r.topological_sort() == r.topological_sort()

    def test_mixed_type_pairs(self):
        r = Relation([(1, "x"), ("x", 2)])
        assert r.reaches(1, 2)

    def test_restrict_to_empty(self):
        r = Relation([("a", "b")])
        sub = r.restricted_to(set())
        assert len(sub) == 0
        assert sub.elements == ()

    def test_is_total_over_singleton(self):
        assert Relation().is_total_over(["a"])

    def test_union_of_nothing(self):
        r = Relation([("a", "b")])
        assert r.union() == r


class TestDegenerateSystems:
    def test_single_transaction_single_op(self):
        b = SystemBuilder()
        b.transaction("T", "S", ["a"]).executed("S", ["a"])
        result = reduce_to_roots(b.build())
        assert result.succeeded
        assert result.serial_order() == ["T"]

    def test_transaction_with_no_operations(self):
        b = SystemBuilder()
        b.transaction("T", "S", []).transaction("U", "S", ["a"])
        b.executed("S", ["a"])
        result = reduce_to_roots(b.build())
        assert result.succeeded
        assert set(result.final_front.nodes) == {"T", "U"}

    def test_deep_linear_chain(self):
        b = SystemBuilder()
        depth = 12
        for level in range(depth, 0, -1):
            child = f"n{level - 1}" if level > 1 else "leaf"
            b.transaction(f"n{level}", f"S{level}", [child])
            b.executed(f"S{level}", [child])
        sys = b.build()
        assert sys.order == depth
        result = reduce_to_roots(sys)
        assert result.succeeded
        assert len(result.fronts) == depth + 1

    def test_many_independent_roots(self):
        b = SystemBuilder()
        for i in range(20):
            b.transaction(f"T{i}", "S", [f"o{i}"])
        b.executed("S", [f"o{i}" for i in range(20)])
        result = reduce_to_roots(b.build())
        assert result.succeeded
        assert len(result.final_front.nodes) == 20


class TestResultMisuse:
    def test_final_front_of_empty_result(self):
        empty = ReductionResult(
            system=figure1_system(), options=ObservedOrderOptions()
        )
        with pytest.raises(ReductionError):
            empty.final_front

    def test_run_is_repeatable_on_same_engine_inputs(self):
        sys = figure1_system()
        assert reduce_to_roots(sys).serial_order() == reduce_to_roots(
            sys
        ).serial_order()
