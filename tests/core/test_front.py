"""Unit tests for fronts: CC (Def. 13), seriality (Def. 17)."""

import pytest

from repro.core.front import Front, ReductionFailure
from repro.core.orders import Relation


def front(nodes, obs=(), weak=(), strong=(), level=1):
    return Front(
        level=level,
        nodes=tuple(nodes),
        observed=Relation(obs, elements=nodes),
        input_weak=Relation(weak, elements=nodes),
        input_strong=Relation(strong, elements=nodes),
    )


class TestConstruction:
    def test_relation_over_foreign_node_rejected(self):
        with pytest.raises(ValueError):
            front(["a"], obs=[("a", "zzz")])

    def test_repr(self):
        f = front(["a", "b"], obs=[("a", "b")])
        assert "level=1" in repr(f)


class TestConflictConsistency:
    def test_acyclic_front_is_cc(self):
        f = front(["a", "b", "c"], obs=[("a", "b")], weak=[("b", "c")])
        assert f.is_conflict_consistent()
        assert f.consistency_violation() is None

    def test_cycle_across_obs_and_input_detected(self):
        f = front(["a", "b"], obs=[("a", "b")], weak=[("b", "a")])
        assert not f.is_conflict_consistent()
        cycle = f.consistency_violation()
        assert cycle[0] == cycle[-1]

    def test_combined_order_unions_both(self):
        f = front(["a", "b", "c"], obs=[("a", "b")], weak=[("b", "c")])
        combined = f.combined_order()
        assert ("a", "b") in combined and ("b", "c") in combined


class TestSeriality:
    def test_serial_front(self):
        f = front(
            ["a", "b"],
            strong=[("a", "b")],
            weak=[("a", "b")],
        )
        assert f.is_serial()

    def test_non_total_strong_order_is_not_serial(self):
        assert not front(["a", "b"]).is_serial()

    def test_singleton_front_is_serial(self):
        assert front(["a"]).is_serial()

    def test_serialization_respects_relations(self):
        f = front(["a", "b", "c"], obs=[("c", "a")], weak=[("a", "b")])
        order = f.serialization()
        assert order.index("c") < order.index("a") < order.index("b")

    def test_as_serial_front(self):
        f = front(["a", "b", "c"], obs=[("c", "a")])
        serial = f.as_serial_front()
        assert serial.is_serial()
        assert serial.is_conflict_consistent()
        assert ("c", "a") in serial.input_strong
        assert set(serial.nodes) == set(f.nodes)


class TestReductionFailure:
    def test_describe_calculation(self):
        failure = ReductionFailure(
            level=2, stage="calculation", cycle=["T1", "T2", "T1"], blocked=("T1",)
        )
        text = failure.describe()
        assert "level 2" in text and "T1" in text and "calculation" in text

    def test_describe_cc(self):
        failure = ReductionFailure(level=1, stage="cc", cycle=["a", "b", "a"])
        assert "not CC" in failure.describe()
