"""Adversarial tests for asymmetric configurations.

Figure 1's point is that composite transactions have *different heights*
and roots can live on any schedule.  These hand-built systems target the
resulting engine subtleties: nodes that materialize early and survive
many fronts, pairs whose endpoints are grouped at different steps
(stepwise Def.-10.3 pull-up), and interference between a shallow root
and a deep one.
"""

import pytest

from repro.core.builder import SystemBuilder
from repro.core.correctness import check_composite_correctness
from repro.core.reduction import reduce_to_roots


def shallow_vs_deep(db_exec):
    """A height-1 root (direct DB client) interfering with a height-3
    composite transaction through the shared bottom schedule."""
    b = SystemBuilder()
    # Deep composite transaction: T1 via Mid via DB (two separate visits).
    b.transaction("T1", "Top", ["m1", "m2"])
    b.executed("Top", ["m1", "m2"])
    b.transaction("m1", "Mid", ["d1"])
    b.transaction("m2", "Mid", ["d2"])
    b.executed("Mid", ["d1", "d2"])
    b.transaction("d1", "DB", ["x_w"])
    b.transaction("d2", "DB", ["y_w"])
    # Shallow root: LOCAL is a direct transaction of the DB schedule.
    b.transaction("LOCAL", "DB", ["x_l", "y_l"])
    b.conflict("DB", "x_w", "x_l")
    b.conflict("DB", "y_l", "y_w")
    b.executed("DB", list(db_exec))
    return b.build()


class TestShallowVsDeep:
    def test_structure(self):
        sys = shallow_vs_deep(["x_w", "x_l", "y_l", "y_w"])
        assert set(sys.roots) == {"T1", "LOCAL"}
        assert sys.materialization_level("LOCAL") == 1
        assert sys.grouping_level("LOCAL") is None  # kept to the end
        assert sys.order == 3

    def test_local_wholly_after_is_correct(self):
        sys = shallow_vs_deep(["x_w", "y_w", "x_l", "y_l"])
        report = check_composite_correctness(sys)
        assert report.correct
        order = report.serial_witness
        assert order.index("T1") < order.index("LOCAL")

    def test_local_wedged_inside_the_deep_root_is_incorrect(self):
        # LOCAL reads x after T1's first visit and writes y before T1's
        # second: T1 -> LOCAL -> T1.
        sys = shallow_vs_deep(["x_w", "x_l", "y_l", "y_w"])
        result = reduce_to_roots(sys)
        assert not result.succeeded
        assert set(result.failure.cycle) == {"T1", "LOCAL"}
        # the shallow root survived two fronts before the clash:
        assert all("LOCAL" in f.nodes for f in result.fronts[1:])

    def test_interleaved_but_consistent_is_correct(self):
        # LOCAL between the visits in ONE direction only.
        sys = shallow_vs_deep(["x_w", "x_l", "y_w", "y_l"])
        assert check_composite_correctness(sys).correct


def uneven_fork():
    """A root whose two branches have different heights: one leaf-level
    call, one going through a mid schedule."""
    b = SystemBuilder()
    b.transaction("T1", "Top", ["shallow1", "deep1"])
    b.transaction("T2", "Top", ["shallow2", "deep2"])
    b.conflict("Top", "shallow1", "shallow2")
    b.conflict("Top", "deep1", "deep2")
    b.executed("Top", ["shallow1", "deep1", "shallow2", "deep2"])
    b.transaction("shallow1", "FastDB", ["f1"])
    b.transaction("shallow2", "FastDB", ["f2"])
    b.conflict("FastDB", "f1", "f2")
    b.transaction("deep1", "Mid", ["md1"])
    b.transaction("deep2", "Mid", ["md2"])
    # The Mid conflict keeps the deep dependency alive past Mid: without
    # it Mid would vouch commutativity and forgive a SlowDB disagreement
    # (which is correct behaviour — the forgetting rule — but not what
    # this adversarial fixture is for).
    b.conflict("Mid", "md1", "md2")
    b.executed("Mid", ["md1", "md2"])
    b.transaction("md1", "SlowDB", ["s1"])
    b.transaction("md2", "SlowDB", ["s2"])
    b.conflict("SlowDB", "s1", "s2")
    return b


class TestUnevenFork:
    def test_consistent_branches_accepted(self):
        b = uneven_fork()
        b.executed("FastDB", ["f1", "f2"])
        b.executed("SlowDB", ["s1", "s2"])
        sys = b.build()
        assert sys.order == 3
        report = check_composite_correctness(sys)
        assert report.correct
        assert report.serial_witness == ["T1", "T2"]

    def test_branches_disagreeing_rejected(self):
        # FastDB serializes T1 first (as Top committed), SlowDB the other
        # way: the deep branch's pull-up arrives one level later than the
        # shallow branch's, but both reach the roots and clash.  Note the
        # inconsistency is invisible to Def.-3 validation (Top's committed
        # input orders are honoured pairwise), so the checker must do it.
        b = uneven_fork()
        b.executed("FastDB", ["f1", "f2"])
        b.executed("SlowDB", ["s2", "s1"])
        with pytest.raises(Exception):
            # deep1 -> deep2 was committed by Top (conflict declared), so a
            # compliant SlowDB cannot serialize s2 first: axiom/cycle error.
            b.build()
        sys = b.build(validate=False, propagate_orders=False)
        assert not check_composite_correctness(sys).correct

    def test_stepwise_pull_up_tracks_materialization(self):
        b = uneven_fork()
        b.executed("FastDB", ["f1", "f2"])
        b.executed("SlowDB", ["s1", "s2"])
        sys = b.build()
        result = reduce_to_roots(sys)
        # level-1 front: FastDB work already lifted to shallow*, SlowDB
        # work lifted to md*; the shallow-deep pair is NOT yet related.
        f1 = result.fronts[1]
        assert ("shallow1", "shallow2") in f1.observed
        assert ("md1", "md2") in f1.observed
        # level-2: md* folded into deep*; shallow* survive untouched.
        f2 = result.fronts[2]
        assert ("deep1", "deep2") in f2.observed
        assert ("shallow1", "shallow2") in f2.observed
