"""Tests for rejection root-cause diagnosis."""

import pytest

from repro.core.correctness import check_composite_correctness
from repro.core.diagnosis import explain_edge, explain_failure
from repro.core.reduction import reduce_to_roots
from repro.exceptions import ReductionError
from repro.figures import figure3_system, figure4_system
from repro.workloads.generator import WorkloadConfig, generate
from repro.workloads.topologies import join_topology, stack_topology


class TestExplainFailure:
    def test_figure3_explanation_names_the_evidence(self):
        result = reduce_to_roots(figure3_system())
        text = explain_failure(result)
        assert "T1 -> T2" in text and "T2 -> T1" in text
        assert "preceded conflicting" in text
        assert "at SP" in text and "at SQ" in text
        assert "no serial order exists" in text

    def test_correct_execution_refused(self):
        result = reduce_to_roots(figure4_system())
        with pytest.raises(ReductionError):
            explain_failure(result)

    def test_report_explain_method(self):
        report = check_composite_correctness(figure3_system())
        assert "T1 -> T2" in report.explain()

    def test_every_random_rejection_is_explainable(self):
        explained = 0
        for seed in range(20):
            rec = generate(
                join_topology(3),
                WorkloadConfig(seed=seed, roots=3, conflict_probability=0.3),
            )
            result = reduce_to_roots(rec.system)
            if result.succeeded:
                continue
            text = explain_failure(result)
            assert result.failure.cycle[0] in text
            explained += 1
        assert explained > 0

    def test_evidence_chains_for_stacks(self):
        for seed in range(20):
            rec = generate(
                stack_topology(2),
                WorkloadConfig(seed=seed, roots=3, conflict_probability=0.3),
            )
            result = reduce_to_roots(rec.system)
            if result.succeeded:
                continue
            text = explain_failure(result)
            # stacks always have concrete conflict chains (no pure
            # input-order edges at the root level)
            assert "preceded conflicting" in text
            return
        pytest.fail("no rejected stack found")


class TestExplainEdge:
    def test_direct_edge(self):
        system = figure3_system()
        lines = explain_edge(system, "T1", "T2")
        assert any("at SP" in line for line in lines)

    def test_edge_without_conflicts_reports_input_orders(self):
        from repro.core.builder import SystemBuilder

        b = SystemBuilder()
        b.transaction("T1", "S", ["a"]).transaction("T2", "S", ["b"])
        b.executed("S", ["a", "b"])
        system = b.build()
        lines = explain_edge(system, "T1", "T2")
        assert any("input orders" in line for line in lines)
