"""Unit tests for the reduction engine (Def. 15–16, Theorem 1)."""

import pytest

from repro.core.builder import SystemBuilder
from repro.core.observed import ObservedOrderOptions
from repro.core.reduction import ReductionEngine, reduce_to_roots
from repro.exceptions import ReductionError
from repro.figures import (
    figure1_system,
    figure3_system,
    figure4_system,
)


class TestLevel0:
    def test_level0_is_all_leaves(self):
        sys = figure1_system()
        f0 = ReductionEngine(sys).level0_front()
        assert set(f0.nodes) == set(sys.leaves)
        assert f0.level == 0

    def test_level0_observed_seeded_from_conflicts(self):
        sys = figure1_system()
        f0 = ReductionEngine(sys).level0_front()
        assert ("p2", "p3") in f0.observed
        assert ("q1", "q2") in f0.observed
        assert ("p1", "p2") not in f0.observed  # commuting pair

    def test_level0_has_no_input_orders(self):
        sys = figure1_system()
        f0 = ReductionEngine(sys).level0_front()
        assert len(f0.input_weak) == 0

    def test_level0_observed_is_transitively_closed(self):
        sys = figure1_system()
        f0 = ReductionEngine(sys).level0_front()
        assert ("p2", "p4") in f0.observed  # via p3


class TestStepwise:
    def test_front_chain_levels(self):
        result = ReductionEngine(figure1_system()).run()
        assert [f.level for f in result.fronts] == [0, 1, 2, 3]

    def test_final_front_is_roots(self):
        sys = figure1_system()
        result = ReductionEngine(sys).run()
        assert set(result.final_front.nodes) == set(sys.roots)

    def test_intermediate_front_nodes(self):
        sys = figure1_system()
        result = ReductionEngine(sys).run()
        f1 = result.fronts[1]
        # Level-1: transactions of SD/SE plus surviving leaves of SA.
        assert "d1" in f1.nodes and "T5" in f1.nodes and "x1" in f1.nodes
        assert "p1" not in f1.nodes

    def test_input_orders_appear_at_owning_level(self):
        sys = figure1_system()
        result = ReductionEngine(sys).run()
        f1 = result.fronts[1]
        # SD's input orders (propagated from SB's output) appear at level 1.
        assert ("d1", "d4") in f1.input_weak

    def test_stop_level(self):
        sys = figure1_system()
        result = ReductionEngine(sys).run(stop_level=1)
        assert result.succeeded
        assert result.final_front.level == 1

    def test_stop_level_beyond_order_rejected(self):
        with pytest.raises(ReductionError):
            ReductionEngine(figure1_system()).run(stop_level=9)

    def test_roots_are_kept_through_fronts(self):
        sys = figure1_system()
        result = ReductionEngine(sys).run()
        # T5 materializes at level 1 and must persist to the end (Def. 16.5).
        for front in result.fronts[1:]:
            assert "T5" in front.nodes


class TestVerdicts:
    def test_figure3_rejected_at_root_step(self):
        result = reduce_to_roots(figure3_system())
        assert not result.succeeded
        assert result.failure.level == 3
        assert result.failure.stage == "calculation"

    def test_figure4_accepted(self):
        result = reduce_to_roots(figure4_system())
        assert result.succeeded
        assert len(result.serial_order()) == 2

    def test_serial_order_raises_on_failure(self):
        result = reduce_to_roots(figure3_system())
        with pytest.raises(ReductionError):
            result.serial_order()

    def test_narrative_mentions_verdict(self):
        good = reduce_to_roots(figure4_system()).narrative()
        assert "ACCEPTED" in good
        bad = reduce_to_roots(figure3_system()).narrative()
        assert "REJECTED" in bad

    def test_cc_failure_stage(self):
        # Contradiction between a schedule's serialization and the orders
        # pulled up from below: CC failure rather than isolation failure.
        b = SystemBuilder()
        b.transaction("T1", "Top", ["u"])
        b.transaction("T2", "Top", ["v"])
        b.conflict("Top", "u", "v")
        # Top claims u before v...
        b.executed("Top", ["u", "v"])
        b.transaction("u", "DB", ["x"])
        b.transaction("v", "DB", ["y"])
        b.conflict("DB", "x", "y")
        # ...but the DB serialized v's work before u's.  Note the DB input
        # order (u, v) is propagated automatically, so this model violates
        # axiom 1a unless we skip validation — exactly the inconsistency
        # the front CC check exists to catch for *unvalidated* inputs.
        b.executed("DB", ["y", "x"])
        sys = b.build(validate=False)
        result = reduce_to_roots(sys)
        assert not result.succeeded
        assert result.failure.stage == "cc"

    def test_single_schedule_flat_history(self):
        # Degenerate composite system: one schedule, classical histories.
        b = SystemBuilder()
        b.transaction("T1", "S", ["a", "b"])
        b.transaction("T2", "S", ["c"])
        b.conflict("S", "a", "c")
        b.conflict("S", "c", "b")
        b.executed("S", ["a", "c", "b"])
        assert not reduce_to_roots(b.build()).succeeded

    def test_empty_conflicts_always_accepted(self):
        b = SystemBuilder()
        b.transaction("T1", "S", ["a", "b"])
        b.transaction("T2", "S", ["c"])
        b.executed("S", ["a", "c", "b"])
        assert reduce_to_roots(b.build()).succeeded


class TestOptions:
    def test_disabling_forgetting_rejects_figure4(self):
        opts = ObservedOrderOptions(forget_nonconflicting=False)
        result = reduce_to_roots(figure4_system(), opts)
        assert not result.succeeded

    def test_forgetting_is_what_separates_fig3_and_fig4(self):
        assert reduce_to_roots(figure4_system()).succeeded
        assert not reduce_to_roots(figure3_system()).succeeded
