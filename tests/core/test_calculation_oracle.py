"""Property test: the polynomial isolation test (quotient acyclicity)
agrees with an exhaustive search for a contiguous linearization.

Def. 16 step 1 asks whether the front can be re-ordered so that every
group is contiguous while all forced constraints are respected.  The
engine decides this via quotient acyclicity; here we cross-validate
against a brute-force oracle that enumerates every linear extension of
the constraints and looks for one with all groups contiguous.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.calculation import Grouping, find_isolation_failure, is_contiguous
from repro.core.orders import Relation


def brute_force_isolable(constraints: Relation, grouping: Grouping) -> bool:
    """Exhaustive oracle: does a contiguous linear extension exist?"""
    for order in constraints.all_topological_sorts():
        if all(
            is_contiguous(order, members)
            for members in grouping.groups.values()
        ):
            return True
    return False


# Small random instances: up to 6 nodes, grouped into up to 3 groups.
@st.composite
def instances(draw):
    n = draw(st.integers(min_value=2, max_value=6))
    nodes = [f"n{i}" for i in range(n)]
    # random DAG edges (i < j keeps it acyclic, which Def. 16 presumes —
    # a cyclic constraint graph fails both tests trivially)
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1), st.integers(0, n - 1)
            ).filter(lambda p: p[0] < p[1]),
            max_size=8,
        )
    )
    relation = Relation(
        [(nodes[a], nodes[b]) for a, b in edges], elements=nodes
    )
    assignment = draw(
        st.lists(st.integers(min_value=0, max_value=2), min_size=n, max_size=n)
    )
    groups = {}
    representative = {}
    for node, g in zip(nodes, assignment):
        label = f"G{g}"
        groups.setdefault(label, []).append(node)
        representative[node] = label
    # Singleton "groups" behave like ungrouped survivors either way, but
    # keep some genuinely ungrouped nodes too:
    ungroup = draw(st.booleans())
    if ungroup and groups:
        label = sorted(groups)[0]
        for node in groups.pop(label):
            representative[node] = node
    grouping = Grouping(level=1, representative=representative, groups=groups)
    return relation, grouping


@given(instances())
@settings(max_examples=200, deadline=None)
def test_quotient_test_matches_brute_force(instance):
    constraints, grouping = instance
    fast = find_isolation_failure(constraints, grouping) is None
    slow = brute_force_isolable(constraints, grouping)
    assert fast == slow


def test_known_negative_example():
    # a -> b -> c with a, c grouped and b outside: the group cannot be
    # contiguous.
    constraints = Relation([("a", "b"), ("b", "c")])
    grouping = Grouping(
        level=1,
        representative={"a": "G", "b": "b", "c": "G"},
        groups={"G": ["a", "c"]},
    )
    assert find_isolation_failure(constraints, grouping) is not None
    assert not brute_force_isolable(constraints, grouping)


def test_known_positive_example():
    constraints = Relation([("a", "b"), ("b", "c")])
    grouping = Grouping(
        level=1,
        representative={"a": "G", "b": "G", "c": "c"},
        groups={"G": ["a", "b"]},
    )
    assert find_isolation_failure(constraints, grouping) is None
    assert brute_force_isolable(constraints, grouping)
