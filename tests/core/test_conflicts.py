"""Unit tests for the generalized conflict relation (Def. 11)."""

from repro.core.builder import SystemBuilder
from repro.core.conflicts import (
    conflict_digest,
    conflict_pairs,
    generalized_conflict,
    iter_schedule_conflicts,
)
from repro.core.orders import Relation


def system():
    b = SystemBuilder()
    b.transaction("T1", "Top", ["u"]).transaction("T2", "Top", ["v"])
    b.conflict("Top", "u", "v")
    b.executed("Top", ["u", "v"])
    b.transaction("u", "L", ["x"]).transaction("v", "R", ["y"])
    b.executed("L", ["x"]).executed("R", ["y"])
    return b.build()


class TestGeneralizedConflict:
    def test_same_schedule_uses_local_predicate(self):
        sys = system()
        obs = Relation()
        assert generalized_conflict(sys, obs, "u", "v")

    def test_same_schedule_non_conflicting(self):
        b = SystemBuilder()
        b.transaction("T1", "S", ["a"]).transaction("T2", "S", ["b"])
        b.executed("S", ["a", "b"])
        sys = b.build()
        # even if the observed order relates them, the schedule's verdict
        # is authoritative for its own operations (Def. 11.1)
        obs = Relation([("a", "b")])
        assert not generalized_conflict(sys, obs, "a", "b")

    def test_cross_schedule_conflicts_iff_observed(self):
        sys = system()
        assert not generalized_conflict(sys, Relation(), "x", "y")
        assert generalized_conflict(sys, Relation([("x", "y")]), "x", "y")
        assert generalized_conflict(sys, Relation([("y", "x")]), "x", "y")

    def test_irreflexive(self):
        sys = system()
        assert not generalized_conflict(sys, Relation([("x", "x")]), "x", "x")


class TestHelpers:
    def test_conflict_pairs(self):
        sys = system()
        obs = Relation([("x", "y")])
        pairs = conflict_pairs(sys, obs, ["x", "y", "u", "v"])
        assert frozenset(("x", "y")) in pairs
        assert frozenset(("u", "v")) in pairs

    def test_conflict_digest_sources(self):
        sys = system()
        obs = Relation([("x", "y")])
        digest = dict(
            ((a, b), src) for a, b, src in conflict_digest(sys, obs, ["x", "y", "u", "v"])
        )
        assert digest[("x", "y")] == "observed"
        assert digest[("u", "v")] == "Top"

    def test_iter_schedule_conflicts(self):
        sys = system()
        assert ("Top", "u", "v") in list(iter_schedule_conflicts(sys))
