"""Unit tests for SystemBuilder: fluent API, propagation, from_spec."""

import pytest

from repro.core.builder import SystemBuilder, build_system
from repro.exceptions import ModelError


class TestDeclaration:
    def test_schedule_idempotent(self):
        b = SystemBuilder().schedule("S").schedule("S")
        b.transaction("T", "S", ["a"]).executed("S", ["a"])
        assert b.build().order == 1

    def test_duplicate_transaction_rejected(self):
        b = SystemBuilder()
        b.transaction("T", "S", ["a"])
        with pytest.raises(ModelError):
            b.transaction("T", "S2", ["b"])

    def test_fluent_chaining(self):
        sys = (
            SystemBuilder()
            .transaction("T1", "S", ["a"])
            .transaction("T2", "S", ["b"])
            .conflict("S", "a", "b")
            .executed("S", ["a", "b"])
            .build()
        )
        assert set(sys.roots) == {"T1", "T2"}

    def test_conflicts_bulk(self):
        b = SystemBuilder()
        b.transaction("T1", "S", ["a"]).transaction("T2", "S", ["b"])
        b.conflicts("S", [("a", "b")])
        b.executed("S", ["a", "b"])
        assert b.build().schedule("S").conflicting("a", "b")

    def test_empty_build_rejected(self):
        with pytest.raises(ModelError):
            SystemBuilder().build()

    def test_unknown_execution_mode_rejected(self):
        b = SystemBuilder()
        with pytest.raises(ModelError):
            b.executed("S", ["a"], mode="banana")


class TestExecutionModes:
    def make(self, mode):
        b = SystemBuilder()
        b.transaction("T1", "S", ["a"]).transaction("T2", "S", ["b"])
        b.transaction("T3", "S", ["c"])
        b.conflict("S", "a", "b")
        b.executed("S", ["a", "b", "c"], mode=mode)
        return b.build()

    def test_conflicts_mode_commits_conflicting_pairs_only(self):
        s = self.make("conflicts").schedule("S")
        assert ("a", "b") in s.weak_output
        assert ("b", "c") not in s.weak_output

    def test_temporal_mode_commits_all(self):
        s = self.make("temporal").schedule("S")
        assert ("b", "c") in s.weak_output
        assert ("a", "c") in s.weak_output  # closed


class TestOrderPropagation:
    def test_weak_output_becomes_callee_weak_input(self):
        b = SystemBuilder()
        b.transaction("T1", "Top", ["u"]).transaction("T2", "Top", ["v"])
        b.conflict("Top", "u", "v")
        b.executed("Top", ["u", "v"])
        b.transaction("u", "DB", ["x"]).transaction("v", "DB", ["y"])
        b.conflict("DB", "x", "y")
        b.executed("DB", ["x", "y"])
        sys = b.build()
        assert ("u", "v") in sys.schedule("DB").weak_input

    def test_strong_output_becomes_callee_strong_input(self):
        b = SystemBuilder()
        b.transaction("T1", "Top", ["u", "v"], strong_order=[("u", "v")])
        b.executed("Top", ["u", "v"])
        b.transaction("u", "DB", ["x"]).transaction("v", "DB", ["y"])
        b.executed("DB", ["x", "y"])
        sys = b.build()
        assert ("u", "v") in sys.schedule("DB").strong_input
        # and axiom 3 then forces the strong output at DB:
        assert ("x", "y") in sys.schedule("DB").strong_output

    def test_propagation_can_be_disabled(self):
        b = SystemBuilder()
        b.transaction("T1", "Top", ["u"]).transaction("T2", "Top", ["v"])
        b.conflict("Top", "u", "v")
        b.executed("Top", ["u", "v"])
        b.transaction("u", "DB", ["x"]).transaction("v", "DB", ["y"])
        b.executed("DB", ["x", "y"])
        with pytest.raises(ModelError, match="4.7"):
            b.build(propagate_orders=False)

    def test_deep_propagation_through_three_levels(self):
        b = SystemBuilder()
        b.transaction("T1", "A", ["m1", "m2"], strong_order=[("m1", "m2")])
        b.executed("A", ["m1", "m2"])
        b.transaction("m1", "B", ["n1"]).transaction("m2", "B", ["n2"])
        b.executed("B", ["n1", "n2"])
        b.transaction("n1", "C", ["x"]).transaction("n2", "C", ["y"])
        b.executed("C", ["x", "y"])
        sys = b.build()
        # Strong order cascades: T1's strong intra order sequences m1<<m2,
        # which axiom 3 expands to n1<<n2 at B, which propagates to C.
        assert ("n1", "n2") in sys.schedule("C").strong_input
        assert ("x", "y") in sys.schedule("C").strong_output


class TestFromSpec:
    SPEC = {
        "schedules": {
            "Top": {
                "transactions": {
                    "T1": ["t11", "t12"],
                    "T2": {"ops": ["t21"], "sequential": True},
                },
                "executed": ["t11", "t21", "t12"],
            },
            "DB": {
                "transactions": {
                    "t11": ["r1"],
                    "t12": ["w1"],
                    "t21": ["w2"],
                },
                "conflicts": [["r1", "w2"], ["w2", "w1"]],
                "executed": ["r1", "w2", "w1"],
            },
        }
    }

    def test_round_trip(self):
        sys = build_system(self.SPEC)
        assert sys.order == 2
        assert set(sys.roots) == {"T1", "T2"}
        assert sys.schedule("DB").conflicting("r1", "w2")

    def test_spec_with_explicit_orders(self):
        spec = {
            "schedules": {
                "S": {
                    "transactions": {
                        "T1": {"ops": ["a", "b"], "weak": [["a", "b"]]},
                        "T2": ["c"],
                    },
                    "conflicts": [["b", "c"]],
                    "weak_output": [["a", "b"], ["b", "c"]],
                    "weak_input": [["T1", "T2"]],
                }
            }
        }
        sys = build_system(spec)
        assert ("T1", "T2") in sys.schedule("S").weak_input

    def test_spec_executed_mode(self):
        spec = {
            "schedules": {
                "S": {
                    "transactions": {"T1": ["a"], "T2": ["b"]},
                    "executed": ["a", "b"],
                    "executed_mode": "temporal",
                }
            }
        }
        sys = build_system(spec)
        assert ("a", "b") in sys.schedule("S").weak_output
