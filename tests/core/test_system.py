"""Unit tests for composite systems: structure, IG, levels (Def. 4–9)."""

import pytest

from repro.core.builder import SystemBuilder
from repro.core.schedule import Schedule
from repro.core.system import CompositeSystem
from repro.core.transaction import Transaction
from repro.exceptions import CycleError, ModelError
from repro.figures import figure1_system


def stack2():
    """Two-level stack: T1,T2 on Top invoke t* on DB."""
    b = SystemBuilder()
    b.transaction("T1", "Top", ["t11", "t12"])
    b.transaction("T2", "Top", ["t21"])
    b.transaction("t11", "DB", ["r1"])
    b.transaction("t12", "DB", ["w1"])
    b.transaction("t21", "DB", ["w2"])
    b.conflict("DB", "r1", "w2")
    b.executed("DB", ["r1", "w2", "w1"])
    b.executed("Top", ["t11", "t21", "t12"])
    return b.build()


class TestStructure:
    def test_empty_system_rejected(self):
        with pytest.raises(ModelError):
            CompositeSystem([])

    def test_duplicate_schedule_names_rejected(self):
        s1 = Schedule("S", [Transaction("T1", [])])
        s2 = Schedule("S", [Transaction("T2", [])])
        with pytest.raises(ModelError):
            CompositeSystem([s1, s2])

    def test_transaction_in_two_schedules_rejected(self):
        s1 = Schedule("S1", [Transaction("T", [])])
        s2 = Schedule("S2", [Transaction("T", [])])
        with pytest.raises(ModelError):
            CompositeSystem([s1, s2])

    def test_operation_with_two_parents_rejected(self):
        s = Schedule(
            "S", [Transaction("T1", ["a"]), Transaction("T2", [])], validate=False
        )
        s2 = Schedule("S2", [Transaction("T3", ["a"])], validate=False)
        with pytest.raises(ModelError):
            CompositeSystem([s, s2])

    def test_roots_leaves_internal(self):
        sys = stack2()
        assert set(sys.roots) == {"T1", "T2"}
        assert set(sys.leaves) == {"r1", "w1", "w2"}
        assert set(sys.internal_nodes) == {"t11", "t12", "t21"}

    def test_node_predicates(self):
        sys = stack2()
        assert sys.is_root("T1") and not sys.is_root("t11")
        assert sys.is_leaf("r1") and not sys.is_leaf("t11")
        assert sys.is_transaction("t11") and not sys.is_transaction("r1")

    def test_parents(self):
        sys = stack2()
        assert sys.parent("r1") == "t11"
        assert sys.parent("t11") == "T1"
        assert sys.parent("T1") == "T1"  # roots are their own parent

    def test_unknown_node_raises(self):
        sys = stack2()
        with pytest.raises(ModelError):
            sys.parent("nope")
        with pytest.raises(ModelError):
            sys.schedule("nope")
        with pytest.raises(ModelError):
            sys.schedule_of_transaction("r1")


class TestInvocationGraphAndLevels:
    def test_stack_levels(self):
        sys = stack2()
        assert sys.level_of("DB") == 1
        assert sys.level_of("Top") == 2
        assert sys.order == 2
        assert set(sys.schedules_at_level(1)) == {"DB"}

    def test_invocation_graph_edges(self):
        sys = stack2()
        ig = sys.invocation_graph
        assert ("Top", "DB") in ig
        assert ("DB", "Top") not in ig

    def test_figure1_levels(self):
        sys = figure1_system()
        levels = sys.levels
        assert levels["SD"] == 1 and levels["SE"] == 1
        assert levels["SB"] == 2 and levels["SC"] == 2
        assert levels["SA"] == 3
        assert sys.order == 3

    def test_figure1_roots_at_various_heights(self):
        sys = figure1_system()
        assert set(sys.roots) == {"T1", "T2", "T3", "T4", "T5"}
        assert sys.schedule_of_transaction("T5") == "SD"
        assert sys.schedule_of_transaction("T4") == "SB"

    def test_level_is_longest_path_plus_one(self):
        # Diamond: SA invokes SB and SC; SB invokes SC.  Longest path from
        # SA is SA->SB->SC, so level(SA)=3 even though SA->SC directly.
        b = SystemBuilder()
        b.transaction("T", "SA", ["b1", "c1"])
        b.transaction("b1", "SB", ["c2"])
        b.transaction("c1", "SC", ["x"])
        b.transaction("c2", "SC", ["y"])
        b.executed("SA", ["b1", "c1"])
        b.executed("SB", ["c2"])
        b.executed("SC", ["x", "y"])
        sys = b.build()
        assert sys.level_of("SC") == 1
        assert sys.level_of("SB") == 2
        assert sys.level_of("SA") == 3

    def test_self_invocation_rejected(self):
        b = SystemBuilder()
        b.transaction("T", "S", ["U"])
        b.transaction("U", "S", ["x"])
        with pytest.raises(CycleError):
            b.build()

    def test_mutual_recursion_rejected(self):
        b = SystemBuilder()
        b.transaction("T", "S1", ["U"])
        b.transaction("U", "S2", ["V"])
        b.transaction("V", "S1", ["x"])
        with pytest.raises(CycleError):
            b.build()


class TestExecutionTrees:
    def test_children(self):
        sys = stack2()
        assert sys.children("T1") == ("t11", "t12")
        assert sys.children("t11") == ("r1",)

    def test_activity(self):
        sys = stack2()
        assert sys.activity("T1") == {"t11", "t12", "r1", "w1"}

    def test_composite_transaction_includes_root(self):
        sys = stack2()
        tree = sys.composite_transaction("T1")
        assert "T1" in tree and "r1" in tree

    def test_composite_transaction_of_non_root_rejected(self):
        with pytest.raises(ModelError):
            stack2().composite_transaction("t11")

    def test_leaves_of(self):
        sys = stack2()
        assert sys.leaves_of("T1") == {"r1", "w1"}
        assert sys.leaves_of("r1") == {"r1"}

    def test_ancestors_and_root_of(self):
        sys = stack2()
        assert sys.ancestors("r1") == ["t11", "T1"]
        assert sys.root_of("r1") == "T1"
        assert sys.root_of("T1") == "T1"
        assert sys.depth("r1") == 2 and sys.depth("T1") == 0

    def test_all_nodes_covers_everything(self):
        sys = stack2()
        nodes = set(sys.all_nodes())
        assert nodes == {"T1", "T2", "t11", "t12", "t21", "r1", "w1", "w2"}


class TestCommonScheduleAndConflicts:
    def test_common_schedule_of_siblings(self):
        sys = stack2()
        assert sys.common_schedule("r1", "w2") == "DB"
        assert sys.common_schedule("t11", "t21") == "Top"

    def test_no_common_schedule_across_levels(self):
        sys = stack2()
        assert sys.common_schedule("r1", "t21") is None

    def test_roots_have_no_common_schedule(self):
        sys = stack2()
        assert sys.common_schedule("T1", "T2") is None
        assert sys.schedule_of_operation("T1") is None

    def test_local_conflicts(self):
        sys = stack2()
        assert sys.conflicting("r1", "w2")
        assert not sys.conflicting("r1", "w1")
        assert not sys.conflicting("r1", "t21")  # different schedules


class TestReductionSupport:
    def test_materialization_levels(self):
        sys = stack2()
        assert sys.materialization_level("r1") == 0
        assert sys.materialization_level("t11") == 1
        assert sys.materialization_level("T1") == 2

    def test_grouping_levels(self):
        sys = stack2()
        assert sys.grouping_level("r1") == 1  # folded into t11 at step 1
        assert sys.grouping_level("t11") == 2
        assert sys.grouping_level("T1") is None  # roots are never grouped

    def test_figure1_root_on_level1_schedule(self):
        sys = figure1_system()
        assert sys.materialization_level("T5") == 1
        assert sys.grouping_level("T5") is None


class TestOrderPropagationValidation:
    def test_missing_propagated_input_rejected(self):
        # Build schedules by hand, omitting the Def-4.7 input order.
        top = Schedule.from_sequence(
            "Top",
            [Transaction("T1", ["t11"]), Transaction("T2", ["t21"])],
            ["t11", "t21"],
            conflicts=[("t11", "t21")],
        )
        db = Schedule.from_sequence(
            "DB",
            [Transaction("t11", ["a"]), Transaction("t21", ["b"])],
            ["a", "b"],
            conflicts=[("a", "b")],
            # weak_input deliberately missing (t11, t21)
        )
        with pytest.raises(ModelError, match="4.7"):
            CompositeSystem([top, db])

    def test_validation_can_be_skipped(self):
        top = Schedule.from_sequence(
            "Top",
            [Transaction("T1", ["t11"]), Transaction("T2", ["t21"])],
            ["t11", "t21"],
            conflicts=[("t11", "t21")],
        )
        db = Schedule.from_sequence(
            "DB",
            [Transaction("t11", ["a"]), Transaction("t21", ["b"])],
            ["a", "b"],
            conflicts=[("a", "b")],
        )
        sys = CompositeSystem([top, db], validate=False)
        assert sys.order == 2
