"""Tests for the telemetry core: spans, counters, sinks, determinism."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import TelemetryError
from repro.obs import (
    NULL_TELEMETRY,
    SCHEMA_VERSION,
    Telemetry,
    canonical_dumps,
    current,
    dumps_events,
    merge_streams,
    read_records,
    sort_events,
    to_record,
    using,
    validate_records,
    write_jsonl,
)


def fixed_clock():
    """A deterministic monotonic clock: 0.0, 0.001, 0.002, ..."""
    counter = itertools.count()
    return lambda: next(counter) * 0.001


def records_of(telemetry):
    return [to_record(e) for e in sort_events(telemetry.collect())]


class TestSpans:
    def test_enter_exit_pair(self):
        tele = Telemetry(clock=fixed_clock())
        with tele.span("phase", level=2):
            pass
        records = records_of(tele)
        assert [r["kind"] for r in records] == ["enter", "exit"]
        assert records[0]["name"] == records[1]["name"] == "phase"
        assert records[0]["fields"] == {"level": 2}
        assert records[0]["dur_s"] is None
        assert records[1]["dur_s"] == pytest.approx(0.001)

    def test_nesting_depths(self):
        tele = Telemetry(clock=fixed_clock())
        with tele.span("outer"):
            with tele.span("inner"):
                pass
        depths = [(r["kind"], r["name"], r["depth"]) for r in records_of(tele)]
        assert depths == [
            ("enter", "outer", 0),
            ("enter", "inner", 1),
            ("exit", "inner", 1),
            ("exit", "outer", 0),
        ]

    def test_exit_emitted_on_exception(self):
        tele = Telemetry(clock=fixed_clock())
        with pytest.raises(RuntimeError):
            with tele.span("doomed"):
                raise RuntimeError("boom")
        assert [r["kind"] for r in records_of(tele)] == ["enter", "exit"]
        assert validate_records(records_of(tele)) == []

    def test_notes_land_on_exit_only(self):
        tele = Telemetry(clock=fixed_clock())
        with tele.span("work", level=1) as span:
            span.note(nodes=9, certified=True)
        enter, exit_ = records_of(tele)
        assert enter["fields"] == {"level": 1}
        assert exit_["fields"] == {"certified": True, "level": 1, "nodes": 9}

    def test_non_scalar_fields_coerced_to_repr(self):
        tele = Telemetry(clock=fixed_clock())
        with tele.span("work", payload=[1, 2]):
            pass
        assert records_of(tele)[0]["fields"] == {"payload": "[1, 2]"}

    def test_max_depth_raises(self):
        tele = Telemetry(max_depth=2, clock=fixed_clock())
        with pytest.raises(TelemetryError):
            with tele.span("a"):
                with tele.span("b"):
                    with tele.span("c"):
                        pass

    def test_disabled_is_noop_but_still_times(self):
        tele = Telemetry(enabled=False, clock=fixed_clock())
        with tele.span("work") as span:
            pass
        tele.count("n")
        assert tele.collect() == []
        assert span.seconds == pytest.approx(0.001)


class TestCounters:
    def test_accumulate_and_flush_sorted(self):
        tele = Telemetry(clock=fixed_clock())
        tele.count("sim.abort", reason="timeout")
        tele.count("sim.abort", reason="crash")
        tele.count("sim.abort", 2, reason="timeout")
        tele.count("reduce.cc_check")
        records = records_of(tele)
        assert [(r["name"], r["fields"]) for r in records] == [
            ("reduce.cc_check", {"value": 1}),
            ("sim.abort", {"reason": "crash", "value": 1}),
            ("sim.abort", {"reason": "timeout", "value": 3}),
        ]
        assert all(r["kind"] == "counter" for r in records)

    def test_collect_is_idempotent(self):
        tele = Telemetry(clock=fixed_clock())
        tele.count("n")
        with tele.span("s"):
            pass
        assert records_of(tele) == records_of(tele)


class TestBoundedBuffer:
    def test_overflow_drops_and_reports(self):
        tele = Telemetry(max_events=3, clock=fixed_clock())
        for i in range(5):
            with tele.span("s", i=i):
                pass
        records = records_of(tele)
        metas = [r for r in records if r["kind"] == "meta"]
        assert len(metas) == 1
        assert metas[0]["name"] == "telemetry.dropped"
        assert metas[0]["fields"] == {"dropped": tele.dropped}
        assert tele.dropped == 7  # 10 span events, 3 kept
        # a truncated stream is still schema-valid (nesting exempted)
        assert validate_records(records) == []


class TestAmbientContext:
    def test_default_is_null(self):
        assert current() is NULL_TELEMETRY
        assert not current().enabled

    def test_using_scopes_the_sink(self):
        tele = Telemetry(clock=fixed_clock())
        with using(tele):
            assert current() is tele
            current().count("hit")
        assert current() is NULL_TELEMETRY
        assert [r["name"] for r in records_of(tele)] == ["hit"]


class TestSink:
    def test_merge_streams_canonical_order(self):
        a = Telemetry(stream="task0001", clock=fixed_clock())
        b = Telemetry(stream="task0000", clock=fixed_clock())
        with a.span("work"):
            pass
        with b.span("work"):
            pass
        merged = merge_streams(a.collect(), b.collect())
        keys = [(e.stream, e.seq) for e in merged]
        assert keys == sorted(keys)
        assert keys[0][0] == "task0000"

    def test_dumps_byte_identical_with_injected_clock(self):
        def run():
            tele = Telemetry(clock=fixed_clock())
            with tele.span("reduce.precheck"):
                pass
            for level in range(3):
                with tele.span("reduce.level", level=level) as span:
                    span.note(nodes=9 - level)
            tele.count("reduce.cc_check", 3)
            return dumps_events(tele.collect())

        assert run() == run()

    def test_roundtrip_and_validate(self, tmp_path):
        tele = Telemetry(clock=fixed_clock())
        with tele.span("outer"):
            with tele.span("inner", level=1):
                pass
        tele.count("n", reason="x")
        path = str(tmp_path / "t.jsonl")
        write_jsonl(tele.collect(), path)
        records = read_records(path)
        assert validate_records(records) == []
        assert records == records_of(tele)

    def test_read_rejects_foreign_schema_version(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"v": 999, "stream": "main", "seq": 0}\n')
        with pytest.raises(TelemetryError):
            read_records(str(path))

    def test_read_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(TelemetryError):
            read_records(str(path))

    def test_canonical_dumps_drops_wall_and_env(self):
        tele = Telemetry(clock=fixed_clock())
        with tele.span("batch.run", tasks=4, workers=4) as span:
            span.note(chunksize=2)
        text = canonical_dumps(records_of(tele))
        assert "dur_s" not in text
        assert "workers" not in text
        assert "chunksize" not in text
        assert '"tasks":4' in text

    def test_validate_flags_broken_streams(self):
        base = {"v": SCHEMA_VERSION, "stream": "main", "depth": 0,
                "dur_s": None, "fields": {}}
        unbalanced = [dict(base, seq=0, kind="exit", name="x")]
        assert validate_records(unbalanced)
        stale_seq = [
            dict(base, seq=5, kind="enter", name="x"),
            dict(base, seq=5, kind="exit", name="x"),
        ]
        assert any("seq" in p for p in validate_records(stale_seq))
        bad_kind = [dict(base, seq=0, kind="zap", name="x")]
        assert any("kind" in p for p in validate_records(bad_kind))
        missing = [{"v": SCHEMA_VERSION}]
        assert any("missing" in p for p in validate_records(missing))
        countless = [dict(base, seq=0, kind="counter", name="x")]
        assert any("value" in p for p in validate_records(countless))


# ----------------------------------------------------------------------
# property: span enter/exit records always nest (satellite 4)
# ----------------------------------------------------------------------
span_names = st.sampled_from(["a", "b", "reduce.level", "sim.run"])

span_trees = st.recursive(
    st.tuples(span_names, st.just([])),
    lambda children: st.tuples(span_names, st.lists(children, max_size=3)),
    max_leaves=10,
)


def _run_tree(tele, tree, counter_every):
    name, children = tree
    with tele.span(name, width=len(children)):
        if counter_every:
            tele.count("visited", span=name)
        for child in children:
            _run_tree(tele, child, counter_every)


@settings(max_examples=60, deadline=None)
@given(trees=st.lists(span_trees, max_size=4), counters=st.booleans())
def test_spans_always_nest(trees, counters):
    """Whatever shape of nested spans (and interleaved counters) a run
    produces, the serialized stream passes the bracket-nesting and
    seq-monotonicity validation."""
    tele = Telemetry(clock=fixed_clock())
    for tree in trees:
        _run_tree(tele, tree, counters)
    records = records_of(tele)
    assert validate_records(records) == []
    enters = sum(1 for r in records if r["kind"] == "enter")
    exits = sum(1 for r in records if r["kind"] == "exit")
    assert enters == exits


@settings(max_examples=30, deadline=None)
@given(trees=st.lists(span_trees, max_size=3))
def test_identical_programs_dump_identically(trees):
    """Same span program + same injected clock => byte-identical JSONL."""

    def run():
        tele = Telemetry(clock=fixed_clock())
        for tree in trees:
            _run_tree(tele, tree, True)
        return dumps_events(tele.collect())

    assert run() == run()
