"""Tests for run profiles: aggregation and the rendered report."""

import itertools

from repro.obs import Telemetry, sort_events, to_record
from repro.obs.profile import build_profile, render_profile


def make_records():
    """A small synthetic run with known durations (1 ms clock ticks)."""
    counter = itertools.count()
    tele = Telemetry(clock=lambda: next(counter) * 0.001)
    with tele.span("reduce.precheck") as span:
        span.note(certified=False)
    for level in range(2):
        with tele.span("reduce.level", level=level) as span:
            span.note(
                closure_calls=1,
                closure_rows=10 + level,
                nodes=9 - level,
                observed_pairs=40,
            )
    tele.count("reduce.cc_check", 2)
    tele.count("sim.abort", 3, reason="timeout")
    return [to_record(e) for e in sort_events(tele.collect())]


class TestBuildProfile:
    def test_phase_aggregation(self):
        profile = build_profile(make_records())
        stats = {p.name: p for p in profile.phases}
        assert set(stats) == {"reduce.precheck", "reduce.level"}
        level = stats["reduce.level"]
        assert level.count == 2
        # each span spends exactly one 1 ms clock tick
        assert level.total_s == 0.002
        assert level.mean_s == 0.001
        assert level.max_s == 0.001
        # sorted by descending total time
        assert profile.phases[0].name == "reduce.level"

    def test_reduce_levels_extracted_in_order(self):
        profile = build_profile(make_records())
        levels = [r["fields"]["level"] for r in profile.reduce_levels]
        assert levels == [0, 1]
        assert profile.reduce_levels[0]["fields"]["closure_rows"] == 10

    def test_counters_folded(self):
        profile = build_profile(make_records())
        assert profile.counters == [
            ("reduce.cc_check", {}, 2.0),
            ("sim.abort", {"reason": "timeout"}, 3.0),
        ]

    def test_top_limits_slowest(self):
        profile = build_profile(make_records(), top=1)
        assert len(profile.slowest) == 1
        assert profile.slowest[0]["kind"] == "exit"

    def test_stream_and_record_counts(self):
        records = make_records()
        profile = build_profile(records)
        assert profile.records == len(records)
        assert profile.streams == 1

    def test_empty_records(self):
        profile = build_profile([])
        assert profile.phases == []
        assert profile.slowest == []
        assert profile.counters == []


class TestRenderProfile:
    def test_report_sections(self):
        report = render_profile(make_records())
        assert "per-phase time (inclusive)" in report
        assert "reduction levels" in report
        assert "slowest spans" in report
        assert "counters" in report
        assert "reduce.level" in report
        assert "reason=timeout" in report

    def test_per_level_rows(self):
        report = render_profile(make_records())
        level_lines = [
            line for line in report.splitlines() if "main" in line
        ]
        # one reduction-levels row per level, showing the noted fields
        assert any("10" in line and "40" in line for line in level_lines)

    def test_no_reduction_table_without_level_spans(self):
        counter = itertools.count()
        tele = Telemetry(clock=lambda: next(counter) * 0.001)
        with tele.span("sim.run"):
            pass
        report = render_profile(
            [to_record(e) for e in sort_events(tele.collect())]
        )
        assert "reduction levels" not in report
        assert "sim.run" in report
