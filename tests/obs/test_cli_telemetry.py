"""End-to-end CLI telemetry tests: --telemetry-out, profile, determinism."""

import json

import pytest

from repro.cli import main
from repro.figures import figure1_system
from repro.io import save
from repro.obs import canonical_dumps, read_records, validate_records


@pytest.fixture()
def correct_file(tmp_path):
    path = tmp_path / "fig1.json"
    save(figure1_system(), path)
    return str(path)


class TestTelemetryOut:
    def test_check_writes_valid_jsonl(self, correct_file, tmp_path, capsys):
        out = str(tmp_path / "t.jsonl")
        assert main(["check", correct_file, "--telemetry-out", out]) == 0
        captured = capsys.readouterr()
        assert "ACCEPTED" in captured.out
        assert "telemetry written" in captured.err
        records = read_records(out)
        assert validate_records(records) == []
        names = {r["name"] for r in records}
        assert "cli.command" in names
        assert "reduce.level" in names
        # every line is one JSON object
        with open(out) as handle:
            for line in handle:
                assert json.loads(line)["v"] == 1

    def test_static_precheck_spans(self, correct_file, tmp_path):
        out = str(tmp_path / "t.jsonl")
        assert main(
            ["check", correct_file, "--static-precheck",
             "--telemetry-out", out]
        ) == 0
        records = read_records(out)
        assert validate_records(records) == []
        names = {r["name"] for r in records}
        assert "reduce.precheck" in names
        assert "lint.prove" in names

    def test_simulate_records_attempt_lifecycle(self, tmp_path):
        out = str(tmp_path / "t.jsonl")
        assert main(
            ["simulate", "--topology", "stack", "--depth", "2",
             "--transactions", "5", "--telemetry-out", out]
        ) == 0
        records = read_records(out)
        assert validate_records(records) == []
        names = {r["name"] for r in records}
        assert "sim.run" in names
        assert "sim.attempt" in names

    def test_strict_exit_code_passes_through(self, correct_file, tmp_path):
        out = str(tmp_path / "t.jsonl")
        code = main(
            ["check", "--strict", correct_file, "--telemetry-out", out]
        )
        assert code == 0
        assert read_records(out)


class TestProfileCommand:
    def test_check_then_profile_shows_level_table(
        self, correct_file, tmp_path, capsys
    ):
        out = str(tmp_path / "t.jsonl")
        assert main(["check", correct_file, "--telemetry-out", out]) == 0
        capsys.readouterr()
        assert main(["profile", out]) == 0
        report = capsys.readouterr().out
        assert "per-phase time (inclusive)" in report
        assert "reduction levels" in report
        assert "reduce.level" in report
        assert "slowest spans" in report

    def test_profile_check_mode(self, correct_file, tmp_path, capsys):
        out = str(tmp_path / "t.jsonl")
        assert main(["check", correct_file, "--telemetry-out", out]) == 0
        capsys.readouterr()
        assert main(["profile", out, "--check"]) == 0
        assert "schema OK" in capsys.readouterr().out

    def test_profile_check_rejects_broken_stream(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text(
            '{"v": 1, "stream": "main", "seq": 0, "kind": "exit", '
            '"name": "x", "depth": 0, "dur_s": 0.1, "fields": {}}\n'
        )
        assert main(["profile", str(bad), "--check"]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_profile_top(self, correct_file, tmp_path, capsys):
        out = str(tmp_path / "t.jsonl")
        assert main(["check", correct_file, "--telemetry-out", out]) == 0
        capsys.readouterr()
        assert main(["profile", out, "--top", "2"]) == 0
        assert "slowest spans (top 2)" in capsys.readouterr().out


class TestWorkerDeterminism:
    """--workers 4 telemetry must be a canonical merge identical to the
    serial stream once wall durations are projected away (satellite 4)."""

    CHAOS = ["chaos", "--topology", "stack", "--depth", "2", "--runs", "2",
             "--protocols", "cc,s2pl", "--transactions", "4", "--seed", "7"]

    def _canonical(self, tmp_path, workers, tag):
        out = str(tmp_path / f"chaos-{tag}.jsonl")
        argv = self.CHAOS + ["--workers", str(workers), "--telemetry-out", out]
        assert main(argv) == 0
        records = read_records(out)
        assert validate_records(records) == []
        return canonical_dumps(records)

    def test_chaos_workers_1_vs_4_byte_identical(self, tmp_path, capsys):
        serial = self._canonical(tmp_path, 1, "serial")
        parallel = self._canonical(tmp_path, 4, "parallel")
        assert serial == parallel

    def test_task_streams_named_by_submission_index(self, tmp_path, capsys):
        out = str(tmp_path / "chaos.jsonl")
        assert main(
            self.CHAOS + ["--workers", "2", "--telemetry-out", out]
        ) == 0
        streams = {r["stream"] for r in read_records(out)}
        # 2 protocols x 2 runs = 4 task streams, plus the main stream
        assert streams == {"main", "task0000", "task0001", "task0002",
                          "task0003"}
