"""Tests for crash-safe sinks: atomic writes and torn-tail recovery."""

import itertools
import json
import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import TelemetryError
from repro.obs import (
    Telemetry,
    atomic_write_text,
    iter_records,
    read_records,
    salvage_records,
    write_jsonl,
)


def fixed_clock():
    counter = itertools.count()
    return lambda: next(counter) * 0.001


def sample_file(path, spans=4):
    """Write a small valid telemetry file; return its bytes."""
    tele = Telemetry(clock=fixed_clock())
    for n in range(spans):
        with tele.span("phase", n=n):
            tele.count("work", n)
    write_jsonl(tele.collect(), str(path))
    return path.read_bytes()


class TestAtomicWrite:
    def test_replaces_not_appends(self, tmp_path):
        target = tmp_path / "file.txt"
        atomic_write_text(str(target), "first\n")
        atomic_write_text(str(target), "second\n")
        assert target.read_text() == "second\n"

    def test_leaves_no_temp_files(self, tmp_path):
        target = tmp_path / "file.txt"
        atomic_write_text(str(target), "data\n")
        assert os.listdir(tmp_path) == ["file.txt"]

    def test_write_jsonl_nonatomic_still_works(self, tmp_path):
        target = tmp_path / "events.jsonl"
        tele = Telemetry(clock=fixed_clock())
        tele.count("c", 1)
        write_jsonl(tele.collect(), str(target), atomic=False)
        assert len(read_records(str(target))) == 1


class TestTornTail:
    def test_intact_file_salvages_clean(self, tmp_path):
        path = tmp_path / "events.jsonl"
        data = sample_file(path)
        records, torn = salvage_records(str(path))
        assert torn is None
        assert records == read_records(str(path))
        assert len(data.splitlines()) == len(records)

    @settings(
        max_examples=120,
        deadline=None,
        # tmp_path is only a scratch directory; every example rewrites
        # the file it reads, so reuse across examples is safe
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(cut=st.integers(min_value=0))
    def test_any_truncation_salvages_the_intact_prefix(self, cut, tmp_path):
        """SIGKILL mid-append == the file cut at an arbitrary byte.
        Whatever the cut point, salvage returns exactly the records
        whose full lines survived, and valid_bytes names the boundary."""
        path = tmp_path / "events.jsonl"
        data = sample_file(path)
        cut = cut % (len(data) + 1)
        path.write_bytes(data[:cut])

        records, torn = salvage_records(str(path))
        chunk = data[:cut]
        survived_lines = [
            line for line in chunk.split(b"\n")[:-1] if line.strip()
        ]
        tail = chunk.split(b"\n")[-1]
        tail_is_complete = False
        if tail.strip():
            # a cut right at the end of a record's JSON (before its
            # newline) leaves a tail that IS a complete record; salvage
            # keeps it
            try:
                tail_is_complete = isinstance(json.loads(tail), dict)
            except json.JSONDecodeError:
                tail_is_complete = False
            if tail_is_complete:
                survived_lines.append(tail)
        assert [json.dumps(r, sort_keys=True, separators=(",", ":"))
                for r in records] == [
            json.dumps(json.loads(line), sort_keys=True, separators=(",", ":"))
            for line in survived_lines
        ]
        if not tail.strip() or tail_is_complete:
            # cut on a record boundary (or a parseable tail): no tear
            assert torn is None
        else:
            assert torn is not None
            assert torn.valid_bytes == chunk.rfind(b"\n") + 1
            assert torn.lost_bytes == cut - torn.valid_bytes
            assert torn.fragment  # something to show in the report
            assert str(path) in torn.describe()

    def test_strict_reader_refuses_torn_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        data = sample_file(path)
        path.write_bytes(data[: len(data) - 5])
        with pytest.raises(TelemetryError, match="torn final record"):
            read_records(str(path))

    def test_mid_file_corruption_is_not_a_tear(self, tmp_path):
        """A malformed line *followed by* more data cannot come from an
        interrupted append — that is damage, and still raises."""
        path = tmp_path / "events.jsonl"
        sample_file(path)
        lines = path.read_bytes().splitlines(keepends=True)
        lines[1] = b'{"v": 1, "broken\n'
        path.write_bytes(b"".join(lines))
        with pytest.raises(TelemetryError, match="not valid JSON"):
            salvage_records(str(path))

    def test_complete_final_line_that_fails_to_parse_raises(self, tmp_path):
        """A torn tail never has a trailing newline; a complete final
        line that does not parse is corruption, not truncation."""
        path = tmp_path / "events.jsonl"
        sample_file(path)
        with open(path, "ab") as handle:
            handle.write(b'{"half": \n')
        with pytest.raises(TelemetryError, match="not valid JSON"):
            salvage_records(str(path))

    def test_iter_records_streams_a_live_sink(self, tmp_path):
        """The bugfix this pins: reading a sink a concurrent writer is
        mid-append to must not crash — the iterator yields everything
        before the tear, reports it via the callback, and stops."""
        path = tmp_path / "events.jsonl"
        data = sample_file(path)
        boundary = data.rfind(b"\n", 0, len(data) - 1) + 1
        path.write_bytes(data[: boundary + 9])  # writer mid-write

        torn_seen = []
        records = list(iter_records(str(path), on_torn=torn_seen.append))
        expected, torn = salvage_records(str(path))
        assert records == expected
        assert torn_seen == [torn]
        assert torn_seen[0] is not None
        assert torn_seen[0].valid_bytes == boundary

    def test_iter_records_equals_salvage_on_intact_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sample_file(path)
        torn_seen = []
        records = list(iter_records(str(path), on_torn=torn_seen.append))
        assert torn_seen == []
        assert records == read_records(str(path))

    def test_iter_records_raises_on_mid_file_corruption(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sample_file(path)
        lines = path.read_bytes().splitlines(keepends=True)
        lines[1] = b'{"v": 1, "broken\n'
        path.write_bytes(b"".join(lines))
        with pytest.raises(TelemetryError, match="not valid JSON"):
            list(iter_records(str(path)))

    def test_iter_records_is_lazy(self, tmp_path):
        """Consuming the head of a torn file never touches the tear —
        the iterator reads line by line, so a live `profile` can show
        the prefix of a sink whose tail is still being written."""
        path = tmp_path / "events.jsonl"
        data = sample_file(path)
        path.write_bytes(data[: len(data) - 3])  # torn tail
        iterator = iter_records(str(path))
        first_line = data.splitlines()[0]
        assert next(iterator) == json.loads(first_line)

    def test_torn_tail_describe_counts_bytes(self, tmp_path):
        path = tmp_path / "events.jsonl"
        data = sample_file(path)
        boundary = data.rfind(b"\n", 0, len(data) - 1) + 1
        path.write_bytes(data[: boundary + 7])
        records, torn = salvage_records(str(path))
        assert torn is not None
        assert torn.valid_bytes == boundary
        assert torn.lost_bytes == 7
        assert f"7 byte(s) after offset {boundary}" in torn.describe()
        # truncating to valid_bytes yields a fully valid stream again
        path.write_bytes(data[:boundary])
        reread, clean = salvage_records(str(path))
        assert clean is None
        assert reread == records
