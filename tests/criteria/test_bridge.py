"""The degenerate-case anchor: Comp-C == CSR on flat histories."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.criteria.bridge import comp_c_of_flat, flat_to_composite
from repro.criteria.classical import (
    FlatHistory,
    FlatOp,
    is_conflict_serializable,
)
from repro.workloads.flat import FlatWorkloadConfig, random_flat_history


class TestEmbedding:
    def test_structure(self):
        h = FlatHistory.parse("r1[x] w2[x] w1[y]")
        system = flat_to_composite(h)
        assert system.order == 1
        assert set(system.roots) == {"T1", "T2"}
        assert len(system.leaves) == 3

    def test_program_order_embedded(self):
        h = FlatHistory.parse("r1[x] w1[y]")
        system = flat_to_composite(h)
        txn = system.schedule("DB").transactions["T1"]
        a, b = txn.operations
        assert txn.weakly_ordered(a, b)

    def test_known_verdicts(self):
        assert comp_c_of_flat(FlatHistory.parse("r1[x] w1[x] r2[x]"))
        assert not comp_c_of_flat(
            FlatHistory.parse("r1[x] r2[x] w1[x] w2[x]")
        )


@st.composite
def histories(draw):
    n_txn = draw(st.integers(1, 4))
    n_ops = draw(st.integers(1, 10))
    ops = []
    for _ in range(n_ops):
        ops.append(
            FlatOp(
                f"T{draw(st.integers(1, n_txn))}",
                draw(st.sampled_from("rw")),
                draw(st.sampled_from("xyz")),
            )
        )
    return FlatHistory(ops)


@given(histories())
@settings(max_examples=150, deadline=None)
def test_comp_c_equals_csr_on_flat_histories(history):
    assert comp_c_of_flat(history) == is_conflict_serializable(history)


def test_agreement_on_generated_workloads():
    for seed in range(25):
        history = random_flat_history(
            FlatWorkloadConfig(
                seed=seed, transactions=4, ops_per_transaction=4, items=3
            )
        )
        assert comp_c_of_flat(history) == is_conflict_serializable(history)
