"""Unit tests for the flat CSR/OPSR baselines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.criteria.classical import (
    FlatHistory,
    FlatOp,
    csr_serial_order,
    is_conflict_serializable,
    is_order_preserving_serializable,
    precedence_graph,
    read,
    serialization_graph,
    write,
)
from repro.exceptions import ModelError


class TestFlatOp:
    def test_constructors(self):
        assert read("T1", "x") == FlatOp("T1", "r", "x")
        assert write("T1", "x").kind == "w"

    def test_bad_kind_rejected(self):
        with pytest.raises(ModelError):
            FlatOp("T1", "q", "x")

    def test_conflicts(self):
        assert read("T1", "x").conflicts_with(write("T2", "x"))
        assert write("T1", "x").conflicts_with(write("T2", "x"))
        assert not read("T1", "x").conflicts_with(read("T2", "x"))
        assert not write("T1", "x").conflicts_with(write("T2", "y"))
        assert not write("T1", "x").conflicts_with(write("T1", "x"))

    def test_str(self):
        assert str(read("T1", "x")) == "r_T1[x]"


class TestParse:
    def test_textbook_notation(self):
        h = FlatHistory.parse("r1[x] w2[x] w1[y] c1 c2")
        assert len(h) == 3
        assert h.operations[0] == read("T1", "x")
        assert h.transactions == ("T1", "T2")

    def test_bad_token_rejected(self):
        with pytest.raises(ModelError):
            FlatHistory.parse("r1x")


class TestHistory:
    def test_positions(self):
        h = FlatHistory([read("T1", "x"), write("T2", "x"), write("T1", "y")])
        assert h.first_position("T1") == 0
        assert h.last_position("T1") == 2
        assert h.first_position("T2") == 1

    def test_unknown_transaction_rejected(self):
        h = FlatHistory([read("T1", "x")])
        with pytest.raises(ModelError):
            h.first_position("T9")

    def test_is_serial(self):
        assert FlatHistory.parse("r1[x] w1[y] r2[x]").is_serial()
        assert not FlatHistory.parse("r1[x] r2[x] w1[y]").is_serial()
        assert not FlatHistory.parse("r1[x] r2[x] w1[y] w2[z]").is_serial()

    def test_items_and_operations_of(self):
        h = FlatHistory.parse("r1[x] w2[y]")
        assert h.items == {"x", "y"}
        assert h.operations_of("T1") == [read("T1", "x")]


class TestCSR:
    def test_serializable_history(self):
        h = FlatHistory.parse("r1[x] w1[x] r2[x] w2[x]")
        assert is_conflict_serializable(h)
        assert csr_serial_order(h) == ["T1", "T2"]

    def test_lost_update_not_serializable(self):
        h = FlatHistory.parse("r1[x] r2[x] w1[x] w2[x]")
        assert not is_conflict_serializable(h)
        assert csr_serial_order(h) is None

    def test_interleaved_but_serializable(self):
        h = FlatHistory.parse("r1[x] r2[y] w1[x] w2[y]")
        assert is_conflict_serializable(h)

    def test_serialization_graph_edges(self):
        h = FlatHistory.parse("w1[x] r2[x]")
        assert ("T1", "T2") in serialization_graph(h)

    def test_serial_histories_always_csr(self):
        h = FlatHistory.parse("r1[x] w1[x] r2[x] w2[z] r3[z]")
        assert h.is_serial()
        assert is_conflict_serializable(h)


class TestOPSR:
    def test_precedence_graph(self):
        h = FlatHistory.parse("r1[x] w1[x] r2[y]")
        assert ("T1", "T2") in precedence_graph(h)
        assert ("T2", "T1") not in precedence_graph(h)

    def test_opsr_stricter_than_csr(self):
        # T2 runs strictly between the end of T1... construct: T1 finishes,
        # T3 runs wholly, but conflicts order T3 before T1.
        h = FlatHistory.parse("w1[x] c1 r3[y] w3[x]")
        # T3 reads y then writes x after T1 wrote x: SG T1->T3; precedence
        # T1->T3.  Consistent: OPSR.
        assert is_order_preserving_serializable(h)
        # Now a case where conflicts force T2 before T1 but T1 finished
        # before T2 started:
        h2 = FlatHistory([
            write("T1", "x"),
            read("T2", "y"),
            write("T2", "x"),
        ])
        # SG: T1->T2 (w1[x] before w2[x]); precedence: none (overlap? T1
        # ends at 0, T2 starts at 1: T1 precedes T2) -> consistent.
        assert is_order_preserving_serializable(h2)
        h3 = FlatHistory([
            write("T2", "x"),
            write("T1", "x"),
            write("T3", "y"),
            write("T2", "y"),
        ])
        # T2 spans positions 0..3; SG: T2->T1, T3->T2; precedence: T1->T3
        # (ends 1 < starts 2): chain T3->T2->T1 with T1->T3: cycle -> not
        # order-preserving.
        assert not is_order_preserving_serializable(h3)
        # But plain CSR only sees T2->T1 and T3->T2: acyclic.
        assert is_conflict_serializable(h3)


# ----------------------------------------------------------------------
# property tests
# ----------------------------------------------------------------------
@st.composite
def histories(draw):
    n_txn = draw(st.integers(1, 4))
    n_ops = draw(st.integers(1, 12))
    ops = []
    for _ in range(n_ops):
        txn = f"T{draw(st.integers(1, n_txn))}"
        kind = draw(st.sampled_from("rw"))
        item = draw(st.sampled_from("xyz"))
        ops.append(FlatOp(txn, kind, item))
    return FlatHistory(ops)


@given(histories())
@settings(max_examples=200, deadline=None)
def test_serial_reorder_of_csr_history_preserves_conflict_directions(h):
    order = csr_serial_order(h)
    if order is None:
        return
    position = {t: i for i, t in enumerate(order)}
    for i, j in h.conflict_pairs():
        a, b = h.operations[i], h.operations[j]
        assert position[a.txn] < position[b.txn]


@given(histories())
@settings(max_examples=200, deadline=None)
def test_opsr_implies_csr(h):
    if is_order_preserving_serializable(h):
        assert is_conflict_serializable(h)


@given(histories())
@settings(max_examples=200, deadline=None)
def test_serial_layout_implies_opsr(h):
    if h.is_serial():
        assert is_order_preserving_serializable(h)
