"""Unit tests for the criterion registry / classifier."""

from repro.criteria.registry import (
    CRITERIA_ORDER,
    RecordedExecution,
    applicable_criteria,
    classify,
)
from repro.figures import figure1_system
from repro.workloads.generator import WorkloadConfig, generate
from repro.workloads.topologies import (
    fork_topology,
    join_topology,
    stack_topology,
)


def make(spec, layout="random", seed=0):
    return generate(
        spec,
        WorkloadConfig(
            seed=seed, roots=3, conflict_probability=0.25, layout=layout
        ),
    )


class TestApplicability:
    def test_stack(self):
        # Depth 3: a 2-level stack is also a degenerate 1-branch fork.
        rec = make(stack_topology(3))
        names = applicable_criteria(rec.system)
        assert "scc" in names and "llsr" in names and "comp_c" in names
        assert "fcc" not in names

    def test_two_level_stack_is_also_a_degenerate_fork_and_join(self):
        rec = make(stack_topology(2))
        names = applicable_criteria(rec.system)
        assert {"scc", "fcc", "jcc"} <= set(names)

    def test_fork(self):
        rec = make(fork_topology(2))
        assert "fcc" in applicable_criteria(rec.system)

    def test_join(self):
        rec = make(join_topology(2))
        assert "jcc" in applicable_criteria(rec.system)

    def test_general_configuration(self):
        # serial/opsr/comp_c apply everywhere; structural criteria don't.
        names = applicable_criteria(figure1_system())
        assert names == ("serial", "opsr", "comp_c")

    def test_order_matches_criteria_order(self):
        rec = make(stack_topology(2))
        names = applicable_criteria(rec.system)
        assert names == tuple(n for n in CRITERIA_ORDER if n in names)
        assert {"serial", "opsr"} <= set(names)


class TestClassify:
    def test_stack_verdicts_present(self):
        rec = make(stack_topology(3))
        verdicts = classify(rec)
        assert verdicts["scc"] is not None
        assert verdicts["fcc"] is None
        assert isinstance(verdicts["comp_c"], bool)

    def test_serial_layout_flag(self):
        serial = make(stack_topology(2), layout="serial")
        assert serial.is_serial_layout()
        assert classify(serial)["serial"] is True

    def test_random_layout_usually_not_serial(self):
        found_nonserial = any(
            not make(stack_topology(2), seed=seed).is_serial_layout()
            for seed in range(10)
        )
        assert found_nonserial

    def test_criteria_order_covers_everything(self):
        rec = make(stack_topology(2))
        verdicts = classify(rec)
        assert set(verdicts) == set(CRITERIA_ORDER)

    def test_no_executions_means_no_layout_verdicts(self):
        rec = make(stack_topology(2))
        bare = RecordedExecution(system=rec.system, executions={})
        verdicts = classify(bare)
        assert verdicts["serial"] is None
        assert verdicts["opsr"] is None
