"""Unit + containment tests for LLSR and composite OPSR."""

import pytest

from repro.core.builder import SystemBuilder
from repro.core.correctness import is_composite_correct
from repro.criteria.llsr import (
    conflict_faithfulness_gaps,
    is_conflict_faithful,
    is_llsr,
)
from repro.criteria.opsr import is_opsr, is_schedule_opsr, opsr_violations
from repro.criteria.stack import is_scc
from repro.figures import figure1_system, figure4_system
from repro.workloads.generator import WorkloadConfig, generate
from repro.workloads.topologies import stack_topology


def stack_batch(depth=2, n=60, cp=0.25, layout="random"):
    for seed in range(n):
        yield generate(
            stack_topology(depth),
            WorkloadConfig(
                seed=seed, roots=3, conflict_probability=cp, layout=layout
            ),
        )


class TestLLSR:
    def test_requires_stack_by_default(self):
        with pytest.raises(ValueError):
            is_llsr(figure1_system())

    def test_non_stack_allowed_when_requested(self):
        assert isinstance(
            is_llsr(figure1_system(), require_stack=False), bool
        )

    def test_llsr_contained_in_comp_c(self):
        seen_gap = False
        for rec in stack_batch():
            llsr = is_llsr(rec.system)
            comp = is_composite_correct(rec.system)
            assert not llsr or comp  # LLSR ⊆ Comp-C
            if comp and not llsr:
                seen_gap = True
        assert seen_gap, "the containment should be strict on this ensemble"

    def test_figure4_separates_llsr_from_comp_c(self):
        sys = figure4_system()
        assert is_composite_correct(sys)
        assert not is_llsr(sys, require_stack=False)

    def test_serial_stacks_are_llsr(self):
        for rec in stack_batch(n=15, layout="serial"):
            assert is_llsr(rec.system)


class TestConflictFaithfulness:
    def faithful_stack(self):
        b = SystemBuilder()
        b.transaction("T1", "Top", ["u"]).transaction("T2", "Top", ["v"])
        b.conflict("Top", "u", "v")
        b.executed("Top", ["u", "v"])
        b.transaction("u", "DB", ["x"]).transaction("v", "DB", ["y"])
        b.conflict("DB", "x", "y")
        b.executed("DB", ["x", "y"])
        return b.build()

    def unfaithful_stack(self):
        b = SystemBuilder()
        b.transaction("T1", "Top", ["u"]).transaction("T2", "Top", ["v"])
        b.conflict("Top", "u", "v")
        b.executed("Top", ["u", "v"])
        b.transaction("u", "DB", ["x"]).transaction("v", "DB", ["y"])
        b.executed("DB", ["x", "y"])  # no conflict below!
        return b.build()

    def test_faithful(self):
        assert is_conflict_faithful(self.faithful_stack())
        assert conflict_faithfulness_gaps(self.faithful_stack()) == []

    def test_unfaithful(self):
        sys = self.unfaithful_stack()
        assert not is_conflict_faithful(sys)
        assert ("Top", "u", "v") in conflict_faithfulness_gaps(sys)

    def test_leaf_conflicts_are_trivially_faithful(self):
        b = SystemBuilder()
        b.transaction("T1", "S", ["a"]).transaction("T2", "S", ["b"])
        b.conflict("S", "a", "b")
        b.executed("S", ["a", "b"])
        assert is_conflict_faithful(b.build())


class TestOPSR:
    def test_opsr_contained_in_scc(self):
        seen_gap = False
        for rec in stack_batch():
            opsr = is_opsr(rec.system, rec.executions)
            scc = is_scc(rec.system)
            assert not opsr or scc  # OPSR ⊆ SCC (§4 of the paper)
            if scc and not opsr:
                seen_gap = True
        assert seen_gap, "the containment should be strict on this ensemble"

    def test_serial_layout_is_opsr(self):
        for rec in stack_batch(n=15, layout="serial"):
            assert is_opsr(rec.system, rec.executions)

    def test_order_violation_detected(self):
        # T1 finishes before T2 starts, but conflicts serialize T2 first.
        b = SystemBuilder()
        b.transaction("T1", "S", ["a1", "a2"])
        b.transaction("T2", "S", ["b1"])
        b.transaction("T3", "S", ["c1", "c2"])
        b.conflict("S", "b1", "c1")  # T3 -> T2
        b.conflict("S", "a1", "c2")  # T3 -> T1? depends on order
        sequence = ["c1", "a1", "a2", "b1", "c2"]
        # T1 spans 1..2, T2 at 3: precedence T1 -> T2.  Conflicts: c1<b1
        # gives T3 -> T2; a1<c2 gives T1 -> T3.  Combined acyclic, so this
        # one is fine...
        b.executed("S", sequence)
        sys = b.build()
        assert is_schedule_opsr(sys, "S", sequence)
        # ...now flip: T2 wholly before T1, but conflicts force T1 first.
        b2 = SystemBuilder()
        b2.transaction("T1", "S", ["a1"])
        b2.transaction("T2", "S", ["b1"])
        b2.transaction("T3", "S", ["c1", "c2"])
        b2.conflict("S", "c1", "b1")
        b2.conflict("S", "a1", "c2")
        seq2 = ["c1", "b1", "a1", "c2"]
        # T3 spans 0..3; T2 at 1, T1 at 2: precedence T2 -> T1; conflicts:
        # T3 -> T2 and T1 -> T3: chain T1 -> T3 -> T2 with T2 -> T1: cycle.
        b2.executed("S", seq2)
        sys2 = b2.build()
        assert not is_schedule_opsr(sys2, "S", seq2)
        assert opsr_violations(sys2, {"S": seq2}) == ["S"]
        # yet the schedule is CC (no input orders, serialization acyclic):
        assert sys2.schedule("S").is_conflict_consistent()

    def test_missing_execution_falls_back_to_cc(self):
        for rec in stack_batch(n=5):
            assert is_opsr(rec.system, {}) == all(
                s.is_conflict_consistent()
                for s in rec.system.schedules.values()
            )
