"""Unit tests for SCC / FCC / JCC structure recognizers and criteria."""

import pytest

from repro.core.builder import SystemBuilder
from repro.criteria.fork import branch_order_union, fork_parts, is_fcc, is_fork
from repro.criteria.join import ghost_graph, is_jcc, is_join, join_parts
from repro.criteria.stack import is_scc, is_stack, scc_violations, stack_chain
from repro.figures import figure1_system
from repro.workloads.generator import WorkloadConfig, generate
from repro.workloads.topologies import (
    fork_topology,
    join_topology,
    stack_topology,
)


def make(spec, seed=0, cp=0.3, layout="random", roots=3):
    return generate(
        spec,
        WorkloadConfig(
            seed=seed, roots=roots, conflict_probability=cp, layout=layout
        ),
    )


class TestStackRecognition:
    def test_generated_stacks_recognized(self):
        rec = make(stack_topology(3))
        assert is_stack(rec.system)
        chain = stack_chain(rec.system)
        assert chain == ["L3", "L2", "L1"]

    def test_figure1_is_not_a_stack(self):
        assert not is_stack(figure1_system())

    def test_fork_is_not_a_stack(self):
        rec = make(fork_topology(2))
        assert not is_stack(rec.system)

    def test_single_schedule_is_a_stack(self):
        b = SystemBuilder()
        b.transaction("T1", "S", ["a"]).executed("S", ["a"])
        assert is_stack(b.build())

    def test_scc_requires_stack(self):
        with pytest.raises(ValueError):
            is_scc(figure1_system())


class TestSCC:
    def test_serial_stack_is_scc(self):
        rec = make(stack_topology(3), layout="serial")
        assert is_scc(rec.system)
        assert scc_violations(rec.system) == []

    def test_violations_name_schedules(self):
        for seed in range(30):
            rec = make(stack_topology(2), seed=seed, cp=0.4)
            if not is_scc(rec.system):
                assert scc_violations(rec.system)
                return
        pytest.fail("no non-SCC stack found in 30 seeds")


class TestForkRecognition:
    def test_generated_forks_recognized(self):
        rec = make(fork_topology(3))
        assert is_fork(rec.system)
        top, branches = fork_parts(rec.system)
        assert top == "F"
        assert set(branches) <= {"B1", "B2", "B3"}

    def test_stack_is_not_a_fork(self):
        rec = make(stack_topology(3))
        assert not is_fork(rec.system)

    def test_fcc_requires_fork(self):
        rec = make(stack_topology(3))
        with pytest.raises(ValueError):
            is_fcc(rec.system)

    def test_serial_fork_is_fcc(self):
        rec = make(fork_topology(3), layout="serial")
        assert is_fcc(rec.system)

    def test_branch_order_union_collects_all_branches(self):
        rec = make(fork_topology(3), layout="serial")
        _top, branches = fork_parts(rec.system)
        union = branch_order_union(rec.system, branches)
        per_branch = sum(
            len(
                rec.system.schedule(b)
                .serialization_order()
                .union(rec.system.schedule(b).weak_input)
            )
            for b in branches
        )
        assert len(union) <= per_branch or per_branch == 0


class TestJoinRecognition:
    def test_generated_joins_recognized(self):
        rec = make(join_topology(3))
        assert is_join(rec.system)
        tops, bottom = join_parts(rec.system)
        assert bottom == "J"

    def test_jcc_requires_join(self):
        rec = make(stack_topology(3))
        with pytest.raises(ValueError):
            is_jcc(rec.system)

    def test_serial_join_is_jcc(self):
        rec = make(join_topology(3), layout="serial")
        assert is_jcc(rec.system)

    def test_ghost_graph_relates_cross_client_roots(self):
        # Two clients, conflicting work at the shared server.
        b = SystemBuilder()
        b.transaction("T1", "C1", ["u"])
        b.transaction("T2", "C2", ["v"])
        b.executed("C1", ["u"]).executed("C2", ["v"])
        b.transaction("u", "J", ["x"]).transaction("v", "J", ["y"])
        b.conflict("J", "x", "y")
        b.executed("J", ["x", "y"])
        sys = b.build()
        ghost = ghost_graph(sys, "J")
        assert ("T1", "T2") in ghost

    def test_ghost_graph_skips_same_client_pairs(self):
        b = SystemBuilder()
        b.transaction("T1", "C1", ["u"]).transaction("T2", "C1", ["v"])
        b.executed("C1", ["u", "v"])
        b.transaction("u", "J", ["x"]).transaction("v", "J", ["y"])
        b.conflict("J", "x", "y")
        b.executed("J", ["x", "y"])
        ghost = ghost_graph(b.build(), "J")
        assert len(ghost) == 0

    def test_join_anomaly_detected(self):
        # Classic hidden cycle: two clients, two server transactions each,
        # serialized in opposite directions at the server.
        b = SystemBuilder()
        b.transaction("T1", "C1", ["u1", "u2"])
        b.transaction("T2", "C2", ["v1", "v2"])
        b.executed("C1", ["u1", "u2"]).executed("C2", ["v1", "v2"])
        b.transaction("u1", "J", ["x1"]).transaction("u2", "J", ["x2"])
        b.transaction("v1", "J", ["y1"]).transaction("v2", "J", ["y2"])
        b.conflict("J", "x1", "y1")
        b.conflict("J", "y2", "x2")
        b.executed("J", ["x1", "y1", "y2", "x2"])
        sys = b.build()
        assert is_join(sys)
        assert not is_jcc(sys)
        ghost = ghost_graph(sys, "J")
        assert ("T1", "T2") in ghost and ("T2", "T1") in ghost
