"""Empirical validation of Theorems 2–4: SCC/FCC/JCC ⇔ Comp-C on their
configurations.  These are the library's strongest correctness tests —
any disagreement on any random instance is a bug in the reduction or in
a criterion."""

import pytest

from repro.core.correctness import is_composite_correct
from repro.criteria.fork import is_fcc
from repro.criteria.join import is_jcc
from repro.criteria.stack import is_scc
from repro.workloads.generator import WorkloadConfig, generate
from repro.workloads.topologies import (
    fork_topology,
    join_topology,
    stack_topology,
)

SEEDS = range(25)
CONFLICT_RATES = (0.05, 0.2, 0.45)


def ensemble(spec, roots=3):
    for cp in CONFLICT_RATES:
        for seed in SEEDS:
            yield generate(
                spec,
                WorkloadConfig(
                    seed=seed,
                    roots=roots,
                    conflict_probability=cp,
                    layout="random",
                    intra_order_probability=0.25,
                ),
            )


@pytest.mark.parametrize("depth", [2, 3, 4])
def test_theorem2_scc_iff_comp_c(depth):
    both = set()
    for rec in ensemble(stack_topology(depth)):
        scc = is_scc(rec.system)
        comp = is_composite_correct(rec.system)
        assert scc == comp, rec.executions
        both.add(scc)
    assert both == {True, False}, "ensemble must exercise both verdicts"


@pytest.mark.parametrize("branches", [2, 4])
def test_theorem3_fcc_iff_comp_c(branches):
    both = set()
    for rec in ensemble(fork_topology(branches), roots=4):
        fcc = is_fcc(rec.system)
        comp = is_composite_correct(rec.system)
        assert fcc == comp, rec.executions
        both.add(fcc)
    assert both == {True, False}


@pytest.mark.parametrize("clients", [2, 4])
def test_theorem4_jcc_iff_comp_c(clients):
    both = set()
    for rec in ensemble(join_topology(clients), roots=4):
        jcc = is_jcc(rec.system)
        comp = is_composite_correct(rec.system)
        assert jcc == comp, rec.executions
        both.add(jcc)
    assert both == {True, False}
