"""--workers N output must be byte-identical to --workers 1.

The batch runner's determinism contract (results in task-submission
order, serial-order merges) is what lets ``--workers`` be a pure
go-faster knob.  These tests pin it at the CLI surface, where any
reordering or float-accumulation drift would show up in the printed
tables.
"""

import pytest

from repro.cli import main
from repro.figures import figure1_system, figure3_system
from repro.io import save


def run_cli(capsys, argv):
    code = main(argv)
    return code, capsys.readouterr().out


@pytest.mark.parametrize(
    "argv",
    [
        ["experiment", "t1", "--trials", "6"],
        ["experiment", "t2", "--trials", "6"],
        ["experiment", "h1", "--trials", "4"],
        ["experiment", "a1", "--trials", "8"],
    ],
)
def test_experiment_workers_identical(capsys, argv):
    code1, serial = run_cli(capsys, argv + ["--workers", "1"])
    code4, parallel = run_cli(capsys, argv + ["--workers", "4"])
    assert code1 == code4 == 0
    assert serial == parallel


def test_chaos_workers_identical(capsys):
    argv = [
        "chaos",
        "--depth",
        "2",
        "--runs",
        "2",
        "--transactions",
        "3",
    ]
    code1, serial = run_cli(capsys, argv + ["--workers", "1"])
    code2, parallel = run_cli(capsys, argv + ["--workers", "2"])
    assert code1 == code2 == 0
    assert serial == parallel


def test_compare_workers_identical(capsys, tmp_path):
    file_a = tmp_path / "a.json"
    file_b = tmp_path / "b.json"
    save(figure1_system(), file_a)
    save(figure3_system(), file_b)
    argv = ["compare", str(file_a), str(file_b)]
    code1, serial = run_cli(capsys, argv + ["--workers", "1"])
    code2, parallel = run_cli(capsys, argv + ["--workers", "2"])
    assert code1 == code2
    assert serial == parallel
