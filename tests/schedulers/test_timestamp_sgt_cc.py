"""Unit tests for timestamp ordering, SGT and the CC scheduler."""

import pytest

from repro.schedulers import make_scheduler
from repro.schedulers.base import Decision
from repro.schedulers.composite_cc import CompositeCCScheduler
from repro.schedulers.sgt import SerializationGraphTesting
from repro.schedulers.timestamp import TimestampOrdering


class TestTimestampOrdering:
    def make(self, **kw):
        s = TimestampOrdering("C", **kw)
        s.begin("T1")  # ts 1
        s.begin("T2")  # ts 2
        return s

    def test_in_order_granted(self):
        s = self.make()
        assert s.request("T1", "x", "w") is Decision.GRANT
        assert s.request("T2", "x", "r") is Decision.GRANT

    def test_late_read_aborted(self):
        s = self.make()
        s.request("T2", "x", "w")
        assert s.request("T1", "x", "r") is Decision.ABORT

    def test_late_write_after_read_aborted(self):
        s = self.make()
        s.request("T2", "x", "r")
        assert s.request("T1", "x", "w") is Decision.ABORT

    def test_late_write_after_write_aborted_without_thomas(self):
        s = self.make()
        s.request("T2", "x", "w")
        assert s.request("T1", "x", "w") is Decision.ABORT

    def test_thomas_write_rule_skips_obsolete_write(self):
        s = self.make(thomas_write_rule=True)
        s.request("T2", "x", "w")
        assert s.request("T1", "x", "w") is Decision.GRANT

    def test_restart_gets_fresh_timestamp(self):
        s = self.make()
        old = s.timestamp_of("T1")
        s.abort("T1")
        s.begin("T1")
        assert s.timestamp_of("T1") > old

    def test_never_blocks(self):
        s = self.make()
        for item in "xyz":
            for txn in ("T1", "T2"):
                assert s.request(txn, item, "r") in (
                    Decision.GRANT,
                    Decision.ABORT,
                )


class TestSGT:
    def make(self):
        s = SerializationGraphTesting("C")
        for t in ("T1", "T2", "T3"):
            s.begin(t)
        return s

    def test_acyclic_interleaving_granted(self):
        s = self.make()
        assert s.request("T1", "x", "r") is Decision.GRANT
        assert s.request("T2", "x", "w") is Decision.GRANT
        assert s.request("T2", "y", "w") is Decision.GRANT
        assert s.request("T1", "z", "r") is Decision.GRANT

    def test_cycle_refused(self):
        s = self.make()
        s.request("T1", "x", "r")
        s.request("T2", "x", "w")  # T1 -> T2
        s.request("T2", "y", "w")
        assert s.request("T1", "y", "w") is Decision.ABORT  # T2 -> T1

    def test_abort_removes_edges(self):
        s = self.make()
        s.request("T1", "x", "r")
        s.request("T2", "x", "w")
        s.request("T2", "y", "w")
        s.abort("T2")
        assert s.request("T1", "y", "w") is Decision.GRANT

    def test_committed_nodes_still_block_cycles(self):
        s = self.make()
        s.request("T1", "x", "r")
        s.request("T2", "x", "w")  # T1 -> T2
        s.commit("T2")
        # T2 committed but T1 (live) precedes it: the edge must persist,
        # so an access serializing T2 -> T1 is still a cycle.
        assert s.request("T1", "y", "w") is Decision.GRANT
        s2 = self.make()
        s2.request("T1", "x", "r")
        s2.request("T2", "x", "w")
        s2.request("T2", "y", "w")
        s2.commit("T2")
        assert s2.request("T1", "y", "w") is Decision.ABORT

    def test_garbage_collection_frees_isolated_commits(self):
        s = self.make()
        s.request("T1", "x", "w")
        s.commit("T1")
        assert len(s.serialization_graph()) == 0 or True
        # After GC, a fresh transaction may serialize before nothing.
        s.begin("T4")
        assert s.request("T4", "x", "w") is Decision.GRANT


class TestCompositeCC:
    def make(self):
        s = CompositeCCScheduler("C")
        for t in ("T1", "T2"):
            s.begin(t)
        return s

    def test_behaves_like_sgt_without_orders(self):
        s = self.make()
        s.request("T1", "x", "r")
        s.request("T2", "x", "w")
        s.request("T2", "y", "w")
        assert s.request("T1", "y", "w") is Decision.ABORT

    def test_required_order_refuses_contrary_serialization(self):
        s = self.make()
        s.require_order("T1", "T2")
        assert s.request("T2", "x", "w") is Decision.GRANT
        # Reading x now would serialize T2 before T1, against the order.
        assert s.request("T1", "x", "w") is Decision.ABORT

    def test_required_order_allows_conforming_serialization(self):
        s = self.make()
        s.require_order("T1", "T2")
        assert s.request("T1", "x", "w") is Decision.GRANT
        assert s.request("T2", "x", "w") is Decision.GRANT

    def test_committed_order_reports_requirements_and_conflicts(self):
        s = self.make()
        s.require_order("T1", "T2")
        s.request("T1", "x", "w")
        s.request("T2", "x", "r")
        order = s.committed_order()
        assert ("T1", "T2") in order

    def test_abort_keeps_required_orders(self):
        s = self.make()
        s.require_order("T1", "T2")
        s.request("T2", "x", "w")
        s.request("T1", "x", "w")  # refused
        s.abort("T1")
        s.begin("T1")
        assert s.request("T1", "y", "w") is Decision.GRANT


class TestFactory:
    def test_all_protocols_constructible(self):
        for protocol in ("s2pl", "to", "sgt", "cc"):
            s = make_scheduler(protocol, "C")
            assert s.protocol == protocol

    def test_unknown_protocol(self):
        with pytest.raises(ValueError):
            make_scheduler("nope", "C")
