"""Protocol conformance: one property battery over every scheduler.

Whatever the protocol's strategy, its *committed* accesses must form a
conflict-serializable history at the component — that is the local
safety contract every criterion builds on.  The battery drives each
scheduler with random request streams (interleaved begins, accesses,
commits, aborts, retries) and checks:

* committed serialization graphs are acyclic;
* decisions are sane (no GRANT after the same transaction aborted);
* blocked transactions eventually surface through ``drain_granted``
  once the blockers terminate (no lost wakeups, no lock leaks).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.orders import Relation
from repro.schedulers import PROTOCOLS, make_scheduler
from repro.schedulers.base import Decision

PROTOCOL_IDS = sorted(PROTOCOLS)


class _Driver:
    """Random client driving one scheduler, tracking ground truth."""

    def __init__(self, protocol: str, seed: int, txns: int = 4, items: int = 3):
        self.scheduler = make_scheduler(protocol, "C")
        self.rng = random.Random(seed)
        self.items = [f"x{i}" for i in range(items)]
        self.alive = []
        self.blocked = {}  # txn -> (item, mode)
        self.committed_accesses = []  # (txn, item, mode) in grant order
        self.granted_by_txn = {}
        self.commits = []
        self.counter = 0
        for _ in range(txns):
            self._begin_new()

    def _begin_new(self):
        self.counter += 1
        txn = f"T{self.counter}"
        self.scheduler.begin(txn)
        self.alive.append(txn)
        self.granted_by_txn[txn] = []

    def step(self):
        runnable = [t for t in self.alive if t not in self.blocked]
        if not runnable:
            return
        txn = self.rng.choice(runnable)
        action = self.rng.random()
        if action < 0.6 or not self.granted_by_txn[txn]:
            item = self.rng.choice(self.items)
            mode = "w" if self.rng.random() < 0.5 else "r"
            decision = self.scheduler.request(txn, item, mode)
            if decision is Decision.GRANT:
                self.granted_by_txn[txn].append((item, mode))
            elif decision is Decision.BLOCK:
                self.blocked[txn] = (item, mode)
            else:
                self._abort(txn)
        elif action < 0.8:
            self._commit(txn)
        else:
            self._abort(txn)

    def _commit(self, txn):
        self.scheduler.commit(txn)
        self.alive.remove(txn)
        self.commits.append(txn)
        for item, mode in self.granted_by_txn[txn]:
            self.committed_accesses.append((txn, item, mode))
        self._wake()
        self._begin_new()

    def _abort(self, txn):
        self.scheduler.abort(txn)
        self.alive.remove(txn)
        self.blocked.pop(txn, None)
        self._wake()
        self._begin_new()

    def _wake(self):
        for woken, item, mode in self.scheduler.drain_granted():
            if woken in self.blocked:
                want = self.blocked.pop(woken)
                assert want == (item, mode), "woke with the wrong request"
                self.granted_by_txn[woken].append((item, mode))

    def committed_serialization_graph(self) -> Relation:
        graph = Relation(elements=self.commits)
        accesses = self.committed_accesses
        for i, (ta, ia, ma) in enumerate(accesses):
            for tb, ib, mb in accesses[i + 1:]:
                if ta != tb and ia == ib and "w" in (ma, mb):
                    graph.add(ta, tb)
        return graph


@pytest.mark.parametrize("protocol", PROTOCOL_IDS)
@pytest.mark.parametrize("seed", range(8))
def test_committed_histories_are_serializable(protocol, seed):
    driver = _Driver(protocol, seed)
    for _ in range(120):
        driver.step()
    graph = driver.committed_serialization_graph()
    assert graph.is_acyclic(), (
        f"{protocol} committed a non-serializable history (seed {seed})"
    )


@pytest.mark.parametrize("protocol", PROTOCOL_IDS)
def test_no_lost_wakeups(protocol):
    # Block a transaction behind a writer, terminate the writer in every
    # way, and check the waiter always surfaces.
    for terminal in ("commit", "abort"):
        s = make_scheduler(protocol, "C")
        s.begin("T1")
        s.begin("T2")
        d1 = s.request("T1", "x", "w")
        assert d1 is Decision.GRANT
        d2 = s.request("T2", "x", "w")
        if d2 is Decision.BLOCK:
            getattr(s, terminal)("T1")
            woken = {t for t, _i, _m in s.drain_granted()}
            assert "T2" in woken, (protocol, terminal)


@pytest.mark.parametrize("protocol", PROTOCOL_IDS)
def test_drain_is_empty_without_blocking(protocol):
    s = make_scheduler(protocol, "C")
    s.begin("T1")
    s.request("T1", "x", "w")
    assert s.drain_granted() == []


@given(seed=st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_hypothesis_soak_all_protocols(seed):
    for protocol in PROTOCOL_IDS:
        driver = _Driver(protocol, seed, txns=3, items=2)
        for _ in range(60):
            driver.step()
        assert driver.committed_serialization_graph().is_acyclic()
