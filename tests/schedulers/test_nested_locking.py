"""Regression tests for Moss-style nested locking.

These pin down three subtle behaviours that each caused measurable
pathologies before they were fixed (see docs/PROTOCOLS.md):

* sibling isolation: parallel siblings must NOT share ownership;
* retention bubbling: a finished subtransaction's holdings — including
  holdings it inherited at components it never visited — move to its
  parent, so later subtrees of the same root can proceed;
* canonical root identity in deadlock detection: active transactions
  and retained holders must resolve to the same root id, and waits
  through lock *queues* count as waits.
"""

from repro.schedulers.base import Decision
from repro.schedulers.locking import StrictTwoPhaseLocking


def begin(s, txn, origin, path):
    s.begin(txn)
    s.set_origin(txn, origin)
    s.set_path(txn, path)


class TestSiblingIsolation:
    def test_parallel_siblings_conflict(self):
        s = StrictTwoPhaseLocking("C")
        begin(s, "A.c1", "A", ("A", "A.c1"))
        begin(s, "A.c2", "A", ("A", "A.c2"))
        assert s.request("A.c1", "x", "w") is Decision.GRANT
        # the sibling is NOT an ancestor: it must wait
        assert s.request("A.c2", "x", "w") is Decision.BLOCK

    def test_descendant_reuses_ancestor_lock(self):
        s = StrictTwoPhaseLocking("C")
        begin(s, "A.c1", "A", ("A", "A.c1"))
        begin(s, "A.c1.d1", "A", ("A", "A.c1", "A.c1.d1"))
        assert s.request("A.c1", "x", "w") is Decision.GRANT
        assert s.request("A.c1.d1", "x", "w") is Decision.GRANT


class TestRetentionBubbling:
    def test_finish_hands_lock_to_parent(self):
        s = StrictTwoPhaseLocking("C")
        begin(s, "A.c1", "A", ("A", "A.c1"))
        begin(s, "A.c2", "A", ("A", "A.c2"))
        s.request("A.c1", "x", "w")
        assert s.request("A.c2", "x", "w") is Decision.BLOCK
        # c1 completes: its lock is retained at the common ancestor "A",
        # which IS an ancestor of c2 -> c2 wakes up.
        s.finish("A.c1", parent="A")
        assert ("A.c2", "x", "w") in s.drain_granted()

    def test_inherited_holdings_bubble_at_foreign_components(self):
        # The lock lives at this component under a holder id that never
        # began here (it was inherited from a child); finishing that
        # holder must still move the lock up.
        s = StrictTwoPhaseLocking("C")
        begin(s, "A.m.c", "A", ("A", "A.m", "A.m.c"))
        begin(s, "A.n", "A", ("A", "A.n"))
        s.request("A.m.c", "x", "w")
        s.finish("A.m.c", parent="A.m")  # now held by A.m (never began here)
        assert s.request("A.n", "x", "w") is Decision.BLOCK
        s.finish("A.m", parent="A")  # broadcast finish of the mid txn
        assert ("A.n", "x", "w") in s.drain_granted()

    def test_root_commit_releases_retained_holdings(self):
        s = StrictTwoPhaseLocking("C")
        begin(s, "A.c1", "A", ("A", "A.c1"))
        begin(s, "B.c1", "B", ("B", "B.c1"))
        s.request("A.c1", "x", "w")
        s.finish("A.c1", parent="A")
        assert s.request("B.c1", "x", "w") is Decision.BLOCK
        s.commit("A.c1")  # first commit call of root A releases everything
        assert ("B.c1", "x", "w") in s.drain_granted()


class TestRootGranularityDeadlocks:
    def test_cross_root_cycle_detected(self):
        s = StrictTwoPhaseLocking("C")
        begin(s, "A.c1", "A", ("A", "A.c1"))
        begin(s, "B.c1", "B", ("B", "B.c1"))
        s.request("A.c1", "x", "w")
        s.request("B.c1", "y", "w")
        assert s.request("A.c1", "y", "w") is Decision.BLOCK
        assert s.request("B.c1", "x", "w") is Decision.ABORT

    def test_cycle_through_retained_holder_detected(self):
        # The holder of x is a RETAINED id (root A's finished child);
        # detection must map it to root A, not treat it as a stranger.
        s = StrictTwoPhaseLocking("C")
        begin(s, "A.c1", "A", ("A", "A.c1"))
        begin(s, "A.c2", "A", ("A", "A.c2"))
        begin(s, "B.c1", "B", ("B", "B.c1"))
        s.request("A.c1", "x", "w")
        s.finish("A.c1", parent="A")  # x now retained by "A"
        s.request("B.c1", "y", "w")
        assert s.request("A.c2", "y", "w") is Decision.BLOCK  # A waits B
        assert s.request("B.c1", "x", "w") is Decision.ABORT  # B->A->B

    def test_cycle_through_queue_detected(self):
        # C waits in the QUEUE behind B's request; A closing the loop on
        # C's holdings must still be caught (queue members block too).
        s = StrictTwoPhaseLocking("C")
        for root in ("A", "B", "C"):
            begin(s, f"{root}.c1", root, (root, f"{root}.c1"))
        s.request("A.c1", "x", "w")
        s.request("C.c1", "z", "w")
        assert s.request("B.c1", "x", "w") is Decision.BLOCK  # B waits A
        assert s.request("C.c1", "x", "w") is Decision.BLOCK  # C queued (A, B)
        # A requesting z would close A -> C (holder) with C -> A (queue):
        assert s.request("A.c1", "z", "w") is Decision.ABORT

    def test_intra_root_sibling_wait_is_not_a_deadlock(self):
        s = StrictTwoPhaseLocking("C")
        begin(s, "A.c1", "A", ("A", "A.c1"))
        begin(s, "A.c2", "A", ("A", "A.c2"))
        s.request("A.c1", "x", "w")
        assert s.request("A.c2", "x", "w") is Decision.BLOCK  # wait, no abort
