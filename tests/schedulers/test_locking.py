"""Unit tests for strict two-phase locking."""

from repro.schedulers.base import Decision
from repro.schedulers.locking import StrictTwoPhaseLocking


def make():
    s = StrictTwoPhaseLocking("C")
    s.begin("T1")
    s.begin("T2")
    return s


class TestGrants:
    def test_first_access_granted(self):
        s = make()
        assert s.request("T1", "x", "w") is Decision.GRANT
        assert s.held_locks("T1") == {"x"}

    def test_shared_readers(self):
        s = make()
        assert s.request("T1", "x", "r") is Decision.GRANT
        assert s.request("T2", "x", "r") is Decision.GRANT

    def test_writer_blocks_reader(self):
        s = make()
        s.request("T1", "x", "w")
        assert s.request("T2", "x", "r") is Decision.BLOCK

    def test_reader_blocks_writer(self):
        s = make()
        s.request("T1", "x", "r")
        assert s.request("T2", "x", "w") is Decision.BLOCK

    def test_reentrant_lock(self):
        s = make()
        s.request("T1", "x", "w")
        assert s.request("T1", "x", "w") is Decision.GRANT
        assert s.request("T1", "x", "r") is Decision.GRANT

    def test_upgrade_by_sole_holder(self):
        s = make()
        s.request("T1", "x", "r")
        assert s.request("T1", "x", "w") is Decision.GRANT

    def test_no_reader_joins_once_writer_waits(self):
        s = StrictTwoPhaseLocking("C")
        for t in ("T1", "T2", "T3"):
            s.begin(t)
        s.request("T1", "x", "r")
        assert s.request("T2", "x", "w") is Decision.BLOCK
        assert s.request("T3", "x", "r") is Decision.BLOCK  # no starvation


class TestRelease:
    def test_commit_wakes_waiter(self):
        s = make()
        s.request("T1", "x", "w")
        s.request("T2", "x", "w")
        s.commit("T1")
        assert ("T2", "x", "w") in s.drain_granted()
        assert s.held_locks("T2") == {"x"}

    def test_abort_wakes_waiter(self):
        s = make()
        s.request("T1", "x", "w")
        s.request("T2", "x", "r")
        s.abort("T1")
        assert ("T2", "x", "r") in s.drain_granted()

    def test_multiple_readers_woken_together(self):
        s = StrictTwoPhaseLocking("C")
        for t in ("T1", "T2", "T3"):
            s.begin(t)
        s.request("T1", "x", "w")
        s.request("T2", "x", "r")
        s.request("T3", "x", "r")
        s.commit("T1")
        woken = {t for t, _i, _m in s.drain_granted()}
        assert woken == {"T2", "T3"}

    def test_drain_is_consumed(self):
        s = make()
        s.request("T1", "x", "w")
        s.request("T2", "x", "w")
        s.commit("T1")
        assert s.drain_granted()
        assert s.drain_granted() == []


class TestDeadlock:
    def test_local_deadlock_aborts_requester(self):
        s = make()
        s.request("T1", "x", "w")
        s.request("T2", "y", "w")
        assert s.request("T2", "x", "w") is Decision.BLOCK
        assert s.request("T1", "y", "w") is Decision.ABORT

    def test_no_false_deadlock(self):
        s = StrictTwoPhaseLocking("C")
        for t in ("T1", "T2", "T3"):
            s.begin(t)
        s.request("T1", "x", "w")
        assert s.request("T2", "x", "w") is Decision.BLOCK
        assert s.request("T3", "y", "w") is Decision.GRANT

    def test_abort_clears_waits_for(self):
        s = make()
        s.request("T1", "x", "w")
        s.request("T2", "y", "w")
        s.request("T2", "x", "w")  # T2 waits for T1
        s.abort("T2")
        # T1 can now take y without tripping a stale edge.
        assert s.request("T1", "y", "w") is Decision.GRANT
