"""End-to-end watch mode: tailing a log a concurrent writer is still
appending (torn writes included), and the byte-level equivalence of
``watch`` and ``check`` canonical telemetry.
"""

import threading
import time

from repro.cli import main
from repro.io import load, save
from repro.io.eventlog import dumps_event, events_from_recorded
from repro.obs import canonical_dumps, read_records
from repro.workloads.generator import WorkloadConfig, generate
from repro.workloads.topologies import tree_topology

FIXTURE = "tests/fixtures/unsafe_lost_update.json"


def _slow_writer(path, lines, *, tear_every=3, delay=0.01):
    """Append lines with fsync-less flushes, periodically pausing
    mid-line to leave a genuine torn tail for the tailer to tolerate."""
    with open(path, "w") as handle:
        for n, line in enumerate(lines):
            if n % tear_every == 0 and len(line) > 10:
                handle.write(line[: len(line) // 2])
                handle.flush()
                time.sleep(delay)
                handle.write(line[len(line) // 2 :])
            else:
                handle.write(line)
            handle.flush()
            time.sleep(delay / 4)


def test_watch_follow_survives_a_live_writer(tmp_path, capsys):
    """`watch --follow` over a log being torn-written concurrently:
    sees the rejection live, certifies the batch verdict at the end."""
    log = tmp_path / "stream.jsonl"
    lines = [
        dumps_event(e) + "\n"
        for e in events_from_recorded(load(FIXTURE))
    ]
    writer = threading.Thread(target=_slow_writer, args=(log, lines))
    writer.start()
    try:
        code = main(
            ["watch", "--follow", "--interval", "0.01", str(log)]
        )
    finally:
        writer.join()
    assert code == 0
    out = capsys.readouterr().out
    assert "REJECTED" in out
    assert "final verdict (batch-certified)" in out
    assert f"{len(lines)} event(s)" in out


def test_watch_telemetry_matches_check_byte_for_byte(tmp_path, capsys):
    """The acceptance invariant, at the CLI layer: a finished stream
    through `watch` yields canonical telemetry byte-identical to a
    batch `check` of the same execution."""
    recorded = generate(
        tree_topology(2, 2),
        WorkloadConfig(seed=3, roots=3, conflict_probability=0.2),
    )
    system_file = tmp_path / "system.json"
    save(recorded, system_file)
    log = tmp_path / "stream.jsonl"
    assert main(["eventlog", str(system_file), str(log)]) == 0

    check_tele = tmp_path / "check.jsonl"
    watch_tele = tmp_path / "watch.jsonl"
    assert (
        main(["check", str(system_file), "--telemetry-out", str(check_tele)])
        == 0
    )
    assert main(["watch", str(log), "--telemetry-out", str(watch_tele)]) == 0
    capsys.readouterr()

    assert canonical_dumps(read_records(str(watch_tele))) == canonical_dumps(
        read_records(str(check_tele))
    )


def test_watch_from_offset_suppresses_caught_up_transitions(
    tmp_path, capsys
):
    log = tmp_path / "stream.jsonl"
    lines = [
        dumps_event(e) + "\n"
        for e in events_from_recorded(load(FIXTURE))
    ]
    log.write_text("".join(lines))
    assert main(["watch", str(log)]) == 0
    first = capsys.readouterr().out
    [resume_line] = [
        ln for ln in first.splitlines() if "resume offset" in ln
    ]
    offset = int(resume_line.rsplit(" ", 1)[1])
    assert offset == log.stat().st_size

    # resuming at the final offset re-certifies without re-announcing
    assert main(["watch", "--from-offset", str(offset), str(log)]) == 0
    second = capsys.readouterr().out
    assert "[offset" not in second
    assert "final verdict (batch-certified)" in second
    assert "REJECTED" in second  # the certified narrative still says so


def test_watch_strict_exit_code(tmp_path, capsys):
    log = tmp_path / "stream.jsonl"
    lines = [
        dumps_event(e) + "\n"
        for e in events_from_recorded(load(FIXTURE))
    ]
    log.write_text("".join(lines))
    assert main(["watch", "--strict", str(log)]) == 2
