"""End-to-end pipeline tests: simulate → record → persist → check."""

import pytest

from repro.core.correctness import check_composite_correctness
from repro.core.reduction import reduce_to_roots
from repro.core.serial import verify_theorem1_if_direction
from repro.core.certificates import validate_failure_certificate
from repro.criteria.registry import classify
from repro.io import dumps, loads
from repro.simulator import ProgramConfig, SimulationConfig, simulate
from repro.workloads.generator import WorkloadConfig, generate
from repro.workloads.topologies import (
    fork_topology,
    join_topology,
    random_dag_topology,
    stack_topology,
)


class TestSimulateRecordCheck:
    @pytest.mark.parametrize("protocol", ["cc", "s2pl", "sgt", "to"])
    def test_recorded_runs_are_checkable(self, protocol):
        result = simulate(
            SimulationConfig(
                topology=random_dag_topology(3, 2, seed=2),
                protocol=protocol,
                clients=3,
                transactions_per_client=4,
                seed=1,
                program=ProgramConfig(
                    items_per_component=4, local_access_probability=0.2
                ),
            )
        )
        assert result.assembled is not None
        report = check_composite_correctness(result.assembled.recorded.system)
        assert report.correct in (True, False)
        # whichever way it went, the evidence must validate
        if report.correct:
            assert verify_theorem1_if_direction(report.reduction)
        else:
            assert validate_failure_certificate(report.reduction)

    def test_simulated_run_survives_persistence(self):
        result = simulate(
            SimulationConfig(
                topology=join_topology(2),
                protocol="sgt",
                clients=3,
                transactions_per_client=4,
                seed=3,
            )
        )
        recorded = result.assembled.recorded
        restored = loads(dumps(recorded))
        assert (
            check_composite_correctness(restored.system).correct
            == check_composite_correctness(recorded.system).correct
        )

    def test_simulated_join_classified(self):
        result = simulate(
            SimulationConfig(
                topology=join_topology(2),
                protocol="cc",
                clients=2,
                transactions_per_client=4,
                seed=0,
            )
        )
        verdicts = classify(result.assembled.recorded)
        assert verdicts["comp_c"] is True
        # the recorded system may or may not be a structurally pure join
        # (a root may have skipped the server), but classification never
        # crashes and jcc agrees with comp_c when defined:
        if verdicts["jcc"] is not None:
            assert verdicts["jcc"] == verdicts["comp_c"]


class TestGenerateCheckAgreement:
    def test_generated_and_persisted_verdicts_agree(self):
        for seed in range(6):
            rec = generate(
                stack_topology(3),
                WorkloadConfig(seed=seed, conflict_probability=0.15),
            )
            direct = check_composite_correctness(rec.system).correct
            roundtrip = check_composite_correctness(
                loads(dumps(rec)).system
            ).correct
            assert direct == roundtrip

    def test_fronts_shrink_monotonically(self):
        rec = generate(
            fork_topology(3), WorkloadConfig(seed=1, conflict_probability=0.1)
        )
        result = reduce_to_roots(rec.system)
        sizes = [len(front.nodes) for front in result.fronts]
        assert sizes == sorted(sizes, reverse=True)

    def test_front_nodes_are_always_independent(self):
        # Def. 12: no front node is a descendant of another.
        rec = generate(
            random_dag_topology(3, 2, seed=4),
            WorkloadConfig(seed=2, conflict_probability=0.2),
        )
        result = reduce_to_roots(rec.system)
        system = rec.system
        for front in result.fronts:
            nodes = set(front.nodes)
            for node in front.nodes:
                if system.is_transaction(node):
                    assert not (system.activity(node) & nodes)

    def test_front_nodes_cover_all_leaves(self):
        # Def. 12: a front is maximal — every leaf is represented by
        # exactly one node (itself or an ancestor).
        rec = generate(
            stack_topology(3), WorkloadConfig(seed=5, conflict_probability=0.1)
        )
        result = reduce_to_roots(rec.system)
        system = rec.system
        for front in result.fronts:
            covered = set()
            for node in front.nodes:
                covered |= system.leaves_of(node)
            assert covered == set(system.leaves)
