"""Cross-module property-based tests (hypothesis).

These encode the theory-level invariants that tie the packages
together: permissiveness is antitone in declared conflicts, verdicts
survive persistence, perturbation of commuting pairs never flips
Comp-C, and the special-case theorems hold on hypothesis-chosen
instances (independent seeds from the fixed ensembles in
``tests/criteria/test_theorems.py``)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.correctness import is_composite_correct
from repro.core.reduction import reduce_to_roots
from repro.criteria.fork import is_fcc
from repro.criteria.join import is_jcc
from repro.criteria.stack import is_scc
from repro.io import dumps, loads
from repro.workloads.generator import WorkloadConfig, generate
from repro.workloads.topologies import (
    fork_topology,
    join_topology,
    stack_topology,
)


def regenerate_with_extra_conflict(rec, seed):
    """Rebuild the same execution with one additional (randomly chosen)
    conflict declared on some schedule, re-deriving the committed orders
    from the same temporal sequences.

    Returns None when no conflict can be added (or when the enriched
    model is no longer a valid schedule system, which happens when the
    extra conflict makes a previously-free ordering obligation visible).
    """
    import random

    from repro.core.builder import SystemBuilder

    rng = random.Random(seed)
    system = rec.system
    candidates = []
    for name, schedule in system.schedules.items():
        ops = list(schedule.operations)
        for i, a in enumerate(ops):
            for b in ops[i + 1:]:
                if schedule.transaction_of(a) == schedule.transaction_of(b):
                    continue
                if not schedule.conflicting(a, b):
                    candidates.append((name, a, b))
    if not candidates:
        return None
    extra = rng.choice(candidates)
    builder = SystemBuilder()
    for name, schedule in system.schedules.items():
        for tname, txn in schedule.transactions.items():
            builder.transaction(
                tname,
                name,
                list(txn.operations),
                weak_order=list(txn.weak_order.pairs()),
                strong_order=list(txn.strong_order.pairs()),
            )
        for pair in schedule.conflicts:
            a, b = sorted(pair)
            builder.conflict(name, a, b)
    builder.conflict(extra[0], extra[1], extra[2])
    for name, sequence in rec.executions.items():
        builder.executed(name, list(sequence))
    try:
        return builder.build()
    except Exception:
        return None  # enriched model no longer axiom-valid: skip


@given(seed=st.integers(0, 300), cp=st.sampled_from([0.05, 0.15, 0.3]))
@settings(max_examples=50, deadline=None)
def test_declaring_more_conflicts_never_repairs_an_execution(seed, cp):
    rec = generate(
        stack_topology(2),
        WorkloadConfig(seed=seed, roots=3, conflict_probability=cp),
    )
    base = is_composite_correct(rec.system)
    enriched = regenerate_with_extra_conflict(rec, seed)
    if enriched is None:
        return
    richer = is_composite_correct(enriched)
    # Antitone permissiveness: an extra declared conflict can only break
    # correctness, never restore it.
    assert not (richer and not base)


@given(seed=st.integers(0, 500))
@settings(max_examples=40, deadline=None)
def test_verdict_survives_json_round_trip(seed):
    rec = generate(
        fork_topology(2),
        WorkloadConfig(seed=seed, roots=3, conflict_probability=0.2),
    )
    direct = is_composite_correct(rec.system)
    assert is_composite_correct(loads(dumps(rec)).system) == direct


@given(seed=st.integers(0, 500), swaps=st.integers(1, 40))
@settings(max_examples=40, deadline=None)
def test_commuting_perturbations_preserve_comp_c(seed, swaps):
    rec = generate(
        join_topology(2),
        WorkloadConfig(
            seed=seed,
            roots=3,
            conflict_probability=0.35,
            layout="perturbed",
            perturbation_swaps=swaps,
        ),
    )
    assert is_composite_correct(rec.system)


@given(seed=st.integers(0, 1000), cp=st.sampled_from([0.05, 0.2, 0.4]))
@settings(max_examples=60, deadline=None)
def test_theorem2_on_hypothesis_instances(seed, cp):
    rec = generate(
        stack_topology(2),
        WorkloadConfig(seed=seed, roots=3, conflict_probability=cp),
    )
    assert is_scc(rec.system) == is_composite_correct(rec.system)


@given(seed=st.integers(0, 1000), cp=st.sampled_from([0.05, 0.2, 0.4]))
@settings(max_examples=60, deadline=None)
def test_theorem3_on_hypothesis_instances(seed, cp):
    rec = generate(
        fork_topology(3),
        WorkloadConfig(seed=seed, roots=3, conflict_probability=cp),
    )
    assert is_fcc(rec.system) == is_composite_correct(rec.system)


@given(seed=st.integers(0, 1000), cp=st.sampled_from([0.05, 0.2, 0.4]))
@settings(max_examples=60, deadline=None)
def test_theorem4_on_hypothesis_instances(seed, cp):
    rec = generate(
        join_topology(3),
        WorkloadConfig(seed=seed, roots=3, conflict_probability=cp),
    )
    assert is_jcc(rec.system) == is_composite_correct(rec.system)


@given(seed=st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_observed_order_is_transitively_closed_in_every_front(seed):
    rec = generate(
        stack_topology(3),
        WorkloadConfig(seed=seed, roots=3, conflict_probability=0.15),
    )
    result = reduce_to_roots(rec.system)
    for front in result.fronts:
        assert front.observed.is_transitive()


@given(seed=st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_rejection_is_deterministic(seed):
    rec = generate(
        stack_topology(2),
        WorkloadConfig(seed=seed, roots=4, conflict_probability=0.3),
    )
    first = reduce_to_roots(rec.system)
    second = reduce_to_roots(rec.system)
    assert first.succeeded == second.succeeded
    if not first.succeeded:
        assert first.failure.cycle == second.failure.cycle
        assert first.failure.level == second.failure.level
