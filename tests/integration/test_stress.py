"""Moderate-scale soak: the full pipeline under one larger run.

A single deeper/wider simulation per safe protocol, fully checked —
sized to finish in seconds while exercising queue depths, retries,
garbage collection and recorder assembly well beyond the unit tests.
"""

import pytest

from repro.core.certificates import validate_failure_certificate
from repro.core.correctness import check_composite_correctness
from repro.core.serial import verify_theorem1_if_direction
from repro.simulator import ProgramConfig, SimulationConfig, simulate
from repro.workloads.generator import WorkloadConfig, generate
from repro.workloads.topologies import random_dag_topology, stack_topology


class TestSimulationSoak:
    @pytest.mark.parametrize("protocol", ["cc", "s2pl"])
    def test_large_dag_run_stays_correct(self, protocol):
        result = simulate(
            SimulationConfig(
                topology=random_dag_topology(3, 3, seed=11, extra_roots=2),
                protocol=protocol,
                clients=6,
                transactions_per_client=10,
                seed=42,
                deadlock_timeout=30.0,
                program=ProgramConfig(
                    items_per_component=6,
                    item_skew=0.6,
                    calls_per_transaction=(1, 3),
                    local_access_probability=0.2,
                    parallel_calls=True,
                ),
            )
        )
        metrics = result.metrics
        assert metrics.commits + metrics.gave_up == 60
        assert metrics.commits > 0
        assert result.assembled is not None
        report = check_composite_correctness(result.assembled.recorded.system)
        assert report.correct
        assert verify_theorem1_if_direction(report.reduction)

    def test_uncoordinated_run_is_fully_diagnosable(self):
        result = simulate(
            SimulationConfig(
                topology=random_dag_topology(3, 3, seed=11, extra_roots=2),
                protocol="sgt",
                clients=6,
                transactions_per_client=10,
                seed=42,
                program=ProgramConfig(
                    items_per_component=4, item_skew=0.9
                ),
            )
        )
        report = check_composite_correctness(result.assembled.recorded.system)
        if not report.correct:
            check = validate_failure_certificate(report.reduction)
            assert check, check.reasons


class TestCheckerSoak:
    def test_wide_history(self):
        recorded = generate(
            stack_topology(3),
            WorkloadConfig(
                seed=7,
                roots=40,
                conflict_probability=0.02,
                ops_per_transaction=(1, 2),
            ),
        )
        report = check_composite_correctness(recorded.system)
        assert report.levels_completed >= 0
        if report.correct:
            assert len(report.serial_witness) == 40
