"""Smoke tests: every example script runs green and prints its story."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "examples must narrate their results"


def test_expected_examples_present():
    names = {p.name for p in EXAMPLES}
    assert {
        "quickstart.py",
        "paper_figures.py",
        "federated_banking.py",
        "shared_server.py",
        "protocol_comparison.py",
        "criteria_zoo.py",
    } <= names


def test_quickstart_tells_both_stories():
    script = next(p for p in EXAMPLES if p.name == "quickstart.py")
    out = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True
    ).stdout
    assert "NOT Comp-C" in out
    assert "serial order" in out
