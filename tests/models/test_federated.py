"""Tests for the federated-transactions model and the ticket method."""

import pytest

from repro.core.correctness import check_composite_correctness
from repro.exceptions import ModelError
from repro.models.federated import (
    GlobalWork,
    LocalWork,
    build_federated_system,
    with_tickets,
)


def globals_pair():
    g1 = GlobalWork("G1", "ClientA").at("Site1", ("x", "w")).at(
        "Site2", ("y", "w")
    )
    g2 = GlobalWork("G2", "ClientB").at("Site1", ("x", "w")).at(
        "Site2", ("y", "w")
    )
    return [g1, g2]


class TestBuild:
    def test_structure(self):
        system = build_federated_system(
            globals_pair(),
            [],
            {"Site1": ["G1", "G2"], "Site2": ["G1", "G2"]},
        )
        assert set(system.roots) == {"G1", "G2"}
        assert system.order == 2

    def test_local_transactions_are_roots_on_the_site(self):
        system = build_federated_system(
            globals_pair(),
            [LocalWork("L1", "Site1", (("x", "r"),))],
            {"Site1": ["G1", "L1", "G2"], "Site2": ["G1", "G2"]},
        )
        assert "L1" in system.roots
        assert system.schedule_of_transaction("L1") == "Site1"

    def test_unknown_visit_rejected(self):
        with pytest.raises(ModelError):
            build_federated_system(
                globals_pair(), [], {"Site1": ["G1", "G9"]}
            )


class TestGlobalSerializability:
    def test_consistent_sites_accepted(self):
        system = build_federated_system(
            globals_pair(),
            [],
            {"Site1": ["G1", "G2"], "Site2": ["G1", "G2"]},
        )
        assert check_composite_correctness(system).correct

    def test_hidden_disagreement_rejected(self):
        # Site1 serializes G1 before G2; Site2 the opposite.  Each site
        # is locally serializable; the composite checker sees the cycle.
        system = build_federated_system(
            globals_pair(),
            [],
            {"Site1": ["G1", "G2"], "Site2": ["G2", "G1"]},
        )
        assert not check_composite_correctness(system).correct

    def test_local_transaction_closes_a_cycle(self):
        # G1 -> L1 at Site1 (via x), L1 -> ... classic indirect conflict
        # where a local transaction links two globals.
        g1 = GlobalWork("G1", "ClientA").at("Site1", ("x", "w"))
        g2 = GlobalWork("G2", "ClientB").at("Site1", ("z", "w")).at(
            "Site2", ("y", "w")
        )
        g1.at("Site2", ("y", "w"))
        l1 = LocalWork("L1", "Site1", (("x", "r"), ("z", "w")))
        system = build_federated_system(
            [g1, g2],
            [l1],
            # Site1: G1 -> L1 -> G2;  Site2: G2 -> G1  => global cycle
            {"Site1": ["G1", "L1", "G2"], "Site2": ["G2", "G1"]},
        )
        assert not check_composite_correctness(system).correct


class TestTicketMethod:
    def test_tickets_add_explicit_conflicts(self):
        ticketed = with_tickets(globals_pair())
        assert ticketed[0].site_work["Site1"][0] == ("__ticket__", "r")
        assert ticketed[0].site_work["Site1"][1] == ("__ticket__", "w")

    def test_tickets_make_disagreement_locally_visible(self):
        # Without tickets, two globals touching DISJOINT items at a site
        # can be serialized in opposite orders invisibly:
        g1 = GlobalWork("G1", "ClientA").at("Site1", ("a", "w")).at(
            "Site2", ("c", "w")
        )
        g2 = GlobalWork("G2", "ClientB").at("Site1", ("b", "w")).at(
            "Site2", ("c", "w")
        )
        free = build_federated_system(
            [g1, g2], [], {"Site1": ["G1", "G2"], "Site2": ["G2", "G1"]}
        )
        # no conflict at Site1 at all -> only Site2 orders them -> fine:
        assert check_composite_correctness(free).correct

        # With tickets, every pair of globals conflicts at every site, so
        # the same visit orders now assert Site1: G1<G2, Site2: G2<G1 —
        # an explicit contradiction the checker rejects:
        ticketed = with_tickets([g1, g2])
        system = build_federated_system(
            ticketed, [], {"Site1": ["G1", "G2"], "Site2": ["G2", "G1"]}
        )
        assert not check_composite_correctness(system).correct

    def test_tickets_preserve_consistent_executions(self):
        ticketed = with_tickets(globals_pair())
        system = build_federated_system(
            ticketed, [], {"Site1": ["G1", "G2"], "Site2": ["G1", "G2"]}
        )
        assert check_composite_correctness(system).correct
