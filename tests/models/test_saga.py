"""Tests for the saga model."""

import pytest

from repro.core.correctness import check_composite_correctness
from repro.exceptions import ModelError
from repro.models.saga import (
    Saga,
    build_saga_system,
    flat_equivalent_is_serializable,
)


def booking_sagas():
    s1 = (
        Saga("S1")
        .step("flight", ("seats", "r"), ("seats", "w"),
              compensation=[("seats", "w")])
        .step("hotel", ("rooms", "r"), ("rooms", "w"),
              compensation=[("rooms", "w")])
    )
    s2 = (
        Saga("S2")
        .step("flight", ("seats", "r"), ("seats", "w"),
              compensation=[("seats", "w")])
        .step("hotel", ("rooms", "r"), ("rooms", "w"),
              compensation=[("rooms", "w")])
    )
    return s1, s2


class TestBuild:
    def test_serial_steps(self):
        s1, s2 = booking_sagas()
        system = build_saga_system(
            [s1, s2], ["S1.flight", "S1.hotel", "S2.flight", "S2.hotel"]
        )
        assert set(system.roots) == {"S1", "S2"}
        assert check_composite_correctness(system).correct

    def test_interleaving_must_cover_steps(self):
        s1, s2 = booking_sagas()
        with pytest.raises(ModelError):
            build_saga_system([s1, s2], ["S1.flight"])
        with pytest.raises(ModelError):
            build_saga_system(
                [s1, s2],
                ["S1.flight", "S1.hotel", "S2.flight", "S2.nope"],
            )

    def test_abort_after_range_checked(self):
        s1, _s2 = booking_sagas()
        s1.abort_after = 99
        with pytest.raises(ModelError):
            s1.executed_steps()


class TestSagaSemantics:
    def test_interleaved_sagas_accepted_but_not_flat_serializable(self):
        # The saga pattern's raison d'être: steps interleave across
        # sagas; flat serializability rejects it, saga semantics (and
        # Comp-C with the saga layer vouching) accept it.
        s1, s2 = booking_sagas()
        interleaving = ["S1.flight", "S2.flight", "S2.hotel", "S1.hotel"]
        system = build_saga_system([s1, s2], interleaving)
        assert check_composite_correctness(system).correct
        assert not flat_equivalent_is_serializable([s1, s2], interleaving)

    def test_step_atomicity_still_enforced(self):
        # Steps of one saga must respect program order; a saga's own
        # steps cannot be torn apart by the weak intra order... but the
        # saga layer does order them, so an execution violating a step's
        # internal atomicity is impossible by construction here — what
        # we CAN check is that the recorded verdict is stable across
        # step interleavings:
        s1, s2 = booking_sagas()
        for interleaving in (
            ["S1.flight", "S2.flight", "S1.hotel", "S2.hotel"],
            ["S2.flight", "S1.flight", "S2.hotel", "S1.hotel"],
        ):
            system = build_saga_system([s1, s2], interleaving)
            assert check_composite_correctness(system).correct

    def test_compensated_saga(self):
        s1, s2 = booking_sagas()
        s1.abort_after = 1  # ran the flight step, then compensates it
        steps = [name for name, _a in s1.executed_steps()]
        assert steps == ["S1.flight", "S1.undo_flight"]
        interleaving = [
            "S1.flight",
            "S2.flight",
            "S1.undo_flight",
            "S2.hotel",
        ]
        system = build_saga_system([s1, s2], interleaving)
        assert check_composite_correctness(system).correct

    def test_compensations_reverse_order(self):
        saga = (
            Saga("S", abort_after=2)
            .step("a", ("x", "w"), compensation=[("x", "w")])
            .step("b", ("y", "w"), compensation=[("y", "w")])
        )
        names = [n for n, _ in saga.executed_steps()]
        assert names == ["S.a", "S.b", "S.undo_b", "S.undo_a"]

    def test_steps_without_compensation_skipped_on_abort(self):
        saga = Saga("S", abort_after=1).step("a", ("x", "r"))
        assert [n for n, _ in saga.executed_steps()] == ["S.a"]
