"""Tests for the distributed-transaction (fork) model."""

import pytest

from repro.core.correctness import check_composite_correctness
from repro.criteria import is_fcc, is_fork
from repro.exceptions import ModelError, ScheduleAxiomError
from repro.models.distributed import (
    GlobalTransaction,
    build_distributed_system,
)


def transfers():
    t1 = GlobalTransaction("T1").work("RM1", ("x", "r"), ("x", "w")).work(
        "RM2", ("y", "w")
    )
    t2 = GlobalTransaction("T2").work("RM1", ("x", "w")).work(
        "RM2", ("y", "r"), ("y", "w")
    )
    return [t1, t2]


class TestBuild:
    def test_structure_is_a_fork(self):
        system = build_distributed_system(
            transfers(),
            {"RM1": ["T1", "T2"], "RM2": ["T1", "T2"]},
        )
        assert is_fork(system)
        assert set(system.roots) == {"T1", "T2"}

    def test_visit_twice_rejected(self):
        bad = GlobalTransaction("T1").work("RM1", ("x", "r")).work(
            "RM1", ("x", "w")
        )
        with pytest.raises(ModelError):
            build_distributed_system([bad], {"RM1": ["T1"]})

    def test_unknown_visit_in_order_rejected(self):
        with pytest.raises(ModelError):
            build_distributed_system(
                transfers(), {"RM1": ["T1", "T2", "T3"], "RM2": ["T1", "T2"]}
            )


class TestVerdicts:
    def test_agreeing_managers_correct(self):
        system = build_distributed_system(
            transfers(), {"RM1": ["T1", "T2"], "RM2": ["T1", "T2"]}
        )
        report = check_composite_correctness(system)
        assert report.correct
        assert is_fcc(system) == report.correct

    def test_disagreeing_managers_forgiven_when_commuting(self):
        # The coordinator declares no conflicts: the transfers commute as
        # wholes, so opposite serializations are fine (Def. 23.3).
        system = build_distributed_system(
            transfers(), {"RM1": ["T1", "T2"], "RM2": ["T2", "T1"]}
        )
        assert check_composite_correctness(system).correct

    def test_disagreeing_managers_rejected_when_conflicting(self):
        # Declaring the coordinator-level conflict makes the coordinator
        # order the transfers; a compliant manager cannot serialize the
        # other way (axiom 1a), so the model is refused outright.
        with pytest.raises(ScheduleAxiomError):
            build_distributed_system(
                transfers(),
                {"RM1": ["T1", "T2"], "RM2": ["T2", "T1"]},
                coordinator_conflicts=[("T1", "T2")],
            )
        # A rogue manager's history is caught by the checker instead.
        system = build_distributed_system(
            transfers(),
            {"RM1": ["T1", "T2"], "RM2": ["T2", "T1"]},
            coordinator_conflicts=[("T1", "T2")],
            validate=False,
        )
        assert not check_composite_correctness(system).correct

    def test_theorem3_on_model_instances(self):
        for orders in (
            {"RM1": ["T1", "T2"], "RM2": ["T1", "T2"]},
            {"RM1": ["T2", "T1"], "RM2": ["T2", "T1"]},
            {"RM1": ["T1", "T2"], "RM2": ["T2", "T1"]},
        ):
            system = build_distributed_system(transfers(), orders)
            assert is_fcc(system) == check_composite_correctness(
                system
            ).correct
