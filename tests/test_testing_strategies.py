"""Tests for the public hypothesis-strategy module (repro.testing)."""

from hypothesis import given, settings

from repro.core.correctness import is_composite_correct
from repro.criteria.registry import RecordedExecution, classify
from repro.testing import (
    composite_systems,
    recorded_executions,
    topologies,
    workload_configs,
)
from repro.workloads.topologies import stack_topology


@given(topologies())
@settings(max_examples=30, deadline=None)
def test_topologies_are_valid(spec):
    spec.validate()
    assert spec.order >= 1


@given(workload_configs())
@settings(max_examples=30, deadline=None)
def test_workload_configs_are_valid(config):
    assert config.roots >= 1
    assert config.layout in ("serial", "random", "perturbed")


@given(recorded_executions())
@settings(max_examples=25, deadline=None)
def test_executions_are_well_formed_and_decidable(recorded):
    assert isinstance(recorded, RecordedExecution)
    verdicts = classify(recorded)
    assert verdicts["comp_c"] in (True, False)


@given(recorded_executions(layouts=("serial",)))
@settings(max_examples=15, deadline=None)
def test_serial_strategy_executions_are_correct(recorded):
    assert is_composite_correct(recorded.system)


@given(composite_systems(topology=stack_topology(2)))
@settings(max_examples=15, deadline=None)
def test_fixed_topology_strategy(system):
    assert set(system.levels.values()) <= {1, 2}
