"""Tests for the fault-injection layer: determinism, every failure
mode, downtime/availability accounting, and the safety claim (faults
never break Comp-C of what gets committed)."""

import pytest

from repro.core.correctness import check_composite_correctness
from repro.exceptions import CompositeTxError, FaultError, SimulationError
from repro.simulator import Simulation, SimulationConfig, simulate
from repro.simulator.faults import (
    CrashWindow,
    Degradation,
    FaultInjector,
    FaultPlan,
    random_fault_plan,
)
from repro.simulator.metrics import Metrics
from repro.simulator.programs import AccessStep, Program, ProgramConfig
from repro.workloads.topologies import join_topology, stack_topology


class TestPlanValidation:
    def test_fault_error_in_hierarchy(self):
        assert issubclass(FaultError, SimulationError)
        assert issubclass(FaultError, CompositeTxError)

    def test_bad_probability(self):
        with pytest.raises(FaultError):
            FaultPlan(drop_probability=1.5)
        with pytest.raises(FaultError):
            FaultPlan(transient_probability=-0.1)

    def test_bad_windows(self):
        with pytest.raises(FaultError):
            CrashWindow("A", at=-1.0, down_for=1.0)
        with pytest.raises(FaultError):
            CrashWindow("A", at=0.0, down_for=0.0)
        with pytest.raises(FaultError):
            Degradation("A", at=0.0, duration=1.0, factor=0.5)

    def test_unknown_component_rejected(self):
        plan = FaultPlan(crashes=(CrashWindow("ZZ", 1.0, 1.0),))
        with pytest.raises(FaultError):
            FaultInjector(plan, ["L1", "L2"])

    def test_config_rejects_non_plan(self):
        with pytest.raises(SimulationError):
            SimulationConfig(topology=stack_topology(1), faults="chaos!")

    def test_random_plan_deterministic(self):
        names = stack_topology(3).schedule_names
        a = random_fault_plan(names, seed=4, intensity=1.0)
        b = random_fault_plan(names, seed=4, intensity=1.0)
        assert a == b
        assert a != random_fault_plan(names, seed=5, intensity=1.0)

    def test_zero_intensity_plan_is_empty(self):
        plan = random_fault_plan(["A", "B"], seed=0, intensity=0.0)
        assert plan.empty


def chaos_config(seed=0, **kw):
    topology = kw.pop("topology", stack_topology(2))
    defaults = dict(
        topology=topology,
        protocol="cc",
        clients=3,
        transactions_per_client=5,
        seed=seed,
        program=ProgramConfig(items_per_component=4, item_skew=0.8),
        faults=random_fault_plan(
            topology.schedule_names, seed=seed, intensity=1.0
        ),
    )
    defaults.update(kw)
    return SimulationConfig(**defaults)


class TestDeterminism:
    def test_identical_runs_bit_for_bit(self):
        a = simulate(chaos_config(seed=3))
        b = simulate(chaos_config(seed=3))
        assert a.metrics.summary() == b.metrics.summary()
        assert a.metrics.aborts_by_reason == b.metrics.aborts_by_reason
        assert a.metrics.downtime == b.metrics.downtime
        if a.assembled is not None:
            assert (
                a.assembled.recorded.executions
                == b.assembled.recorded.executions
            )

    def test_faults_do_not_perturb_workload_stream(self):
        # same seed, faults on vs off: the fault-free run must be
        # byte-identical to a run that never had a plan attached,
        # because the injector draws from its own RNG
        base = simulate(chaos_config(seed=1, faults=None))
        empty = simulate(
            chaos_config(seed=1, faults=FaultPlan())
        )
        assert base.metrics.summary() == empty.metrics.summary()


class TestFailureModes:
    def test_permanent_crash_starves_dependent_roots(self):
        # the stack's leaf is down from the start: every root whose
        # program calls into it fails fast and eventually gives up
        plan = FaultPlan(crashes=(CrashWindow("L1", 0.0, 1e9),))
        res = simulate(
            chaos_config(seed=0, faults=plan, max_attempts=3)
        )
        m = res.metrics
        assert m.commits + m.gave_up == 15
        assert m.gave_up > 0
        assert m.aborts_by_reason["component_down"] > 0
        assert m.availability < 1.0
        assert m.root_failure_rate > 0.0

    def test_crash_and_recovery(self):
        # one mid-run crash window: roots die with reason "crash",
        # service resumes, and all roots finish
        plan = FaultPlan(crashes=(CrashWindow("L1", 2.0, 5.0),))
        sim = Simulation(
            chaos_config(seed=0, faults=plan, think_time=0.1)
        )
        res = sim.run()
        m = res.metrics
        assert m.commits + m.gave_up == 15
        assert m.faults_injected.get("crash") == 1
        assert m.downtime["L1"] == pytest.approx(5.0)
        assert 0.0 < m.availability < 1.0
        # discarded attempts carried recorded operations away with them
        assert sim.recorder.discarded_attempts >= m.total_aborts - (
            m.aborts_by_reason.get("component_down", 0)
        )

    def test_degradation_scales_response_times(self):
        # a whole-run degradation window multiplies exponential service
        # draws, so same-seed response times are strictly slower
        slow_plan = FaultPlan(
            degradations=(Degradation("L1", 0.0, 1e9, factor=5.0),)
        )
        fast = simulate(chaos_config(seed=2, faults=None))
        slow = simulate(chaos_config(seed=2, faults=slow_plan))
        assert (
            slow.metrics.mean_response_time
            > fast.metrics.mean_response_time
        )
        assert slow.metrics.faults_injected["degraded_op"] > 0
        # degradation never aborts anything by itself
        assert (
            slow.metrics.aborts_by_reason.keys()
            <= fast.metrics.aborts_by_reason.keys() | {"protocol", "timeout"}
        )

    def test_message_drops_abort_calls(self):
        plan = FaultPlan(drop_probability=1.0, seed=9)
        res = simulate(
            chaos_config(seed=0, faults=plan, max_attempts=2)
        )
        m = res.metrics
        assert m.aborts_by_reason["message_drop"] > 0
        # every root whose program delegates at least one call dies
        assert m.gave_up > 0

    def test_transient_failures_abort_accesses(self):
        plan = FaultPlan(transient_probability=1.0, seed=9)
        res = simulate(
            chaos_config(seed=0, faults=plan, max_attempts=2)
        )
        m = res.metrics
        assert m.commits == 0
        assert m.gave_up == 15
        assert m.aborts_by_reason == {"transient": 30}
        assert m.giveups_by_reason == {"transient": 15}


class TestSafetyUnderFaults:
    @pytest.mark.parametrize("protocol", ["cc", "s2pl"])
    def test_committed_executions_stay_comp_c(self, protocol):
        for seed in range(3):
            res = simulate(
                chaos_config(
                    seed=seed,
                    topology=join_topology(3),
                    protocol=protocol,
                )
            )
            if res.assembled is None:
                continue
            report = check_composite_correctness(
                res.assembled.recorded.system
            )
            assert report.correct, (protocol, seed)

    def test_assembly_survives_heavy_faults(self):
        # an aggressive plan: the recorder must still assemble whatever
        # committed, and only committed roots appear
        res = simulate(
            chaos_config(
                seed=1,
                faults=random_fault_plan(
                    stack_topology(2).schedule_names,
                    seed=1,
                    intensity=3.0,
                    drop_probability=0.1,
                    transient_probability=0.1,
                ),
            )
        )
        if res.assembled is not None:
            assert (
                len(res.assembled.committed_roots) == res.metrics.commits
            )


class TestAccounting:
    def test_availability_formula(self):
        m = Metrics(end_time=10.0, components=2, downtime={"A": 5.0})
        assert m.availability == pytest.approx(0.75)
        assert Metrics().availability == 1.0

    def test_downtime_merges_overlapping_windows(self):
        plan = FaultPlan(
            crashes=(
                CrashWindow("A", 0.0, 5.0),
                CrashWindow("A", 3.0, 4.0),
                CrashWindow("B", 8.0, 10.0),
            )
        )
        injector = FaultInjector(plan, ["A", "B"])
        down = injector.downtime(10.0)
        assert down["A"] == pytest.approx(7.0)
        assert down["B"] == pytest.approx(2.0)  # clipped at the horizon

    def test_summary_includes_new_fields(self):
        summary = simulate(chaos_config(seed=0)).metrics.summary()
        for key in (
            "availability",
            "root_failure_rate",
            "fault_aborts",
            "p50_response_time",
        ):
            assert key in summary

    def test_abort_breakdown_rendering(self):
        m = Metrics()
        assert m.abort_breakdown() == "-"
        m.record_abort("timeout")
        m.record_abort("crash")
        m.record_abort("crash")
        assert m.abort_breakdown() == "crash:2 timeout:1"
