"""Tests for open-loop arrivals and heterogeneous service times."""

import pytest

from repro.core.correctness import check_composite_correctness
from repro.exceptions import SimulationError
from repro.simulator import ProgramConfig, SimulationConfig, simulate
from repro.workloads.topologies import fork_topology, join_topology


class TestOpenLoop:
    def test_all_arrivals_processed(self):
        res = simulate(
            SimulationConfig(
                topology=join_topology(2),
                protocol="cc",
                clients=3,
                transactions_per_client=5,
                arrival="open",
                arrival_rate=0.8,
                seed=1,
            )
        )
        m = res.metrics
        assert m.commits + m.gave_up == 15

    def test_open_loop_runs_are_still_comp_c_under_cc(self):
        for seed in range(3):
            res = simulate(
                SimulationConfig(
                    topology=join_topology(3),
                    protocol="cc",
                    clients=3,
                    transactions_per_client=4,
                    arrival="open",
                    arrival_rate=1.5,
                    seed=seed,
                )
            )
            assert check_composite_correctness(
                res.assembled.recorded.system
            ).correct

    def test_higher_arrival_rate_more_contention(self):
        def abort_rate(rate):
            res = simulate(
                SimulationConfig(
                    topology=join_topology(2),
                    protocol="cc",
                    clients=4,
                    transactions_per_client=8,
                    arrival="open",
                    arrival_rate=rate,
                    seed=3,
                    program=ProgramConfig(items_per_component=3, item_skew=1.0),
                )
            )
            return res.metrics.abort_rate

        assert abort_rate(4.0) >= abort_rate(0.1)

    def test_invalid_arrival_model_rejected(self):
        with pytest.raises(SimulationError):
            SimulationConfig(topology=join_topology(2), arrival="weird")

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(SimulationError):
            SimulationConfig(
                topology=join_topology(2), arrival="open", arrival_rate=0.0
            )


class TestHeterogeneousService:
    def test_slow_component_dominates_response_time(self):
        def mean_response(service_times):
            res = simulate(
                SimulationConfig(
                    topology=fork_topology(2),
                    protocol="sgt",
                    clients=2,
                    transactions_per_client=6,
                    seed=5,
                    service_times=service_times,
                )
            )
            return res.metrics.mean_response_time

        fast = mean_response({"B1": 0.1, "B2": 0.1})
        slow = mean_response({"B1": 5.0, "B2": 5.0})
        assert slow > fast * 2

    def test_default_applies_to_unlisted_components(self):
        cfg = SimulationConfig(
            topology=fork_topology(2),
            mean_service_time=2.5,
            service_times={"B1": 0.5},
        )
        assert cfg.service_time_for("B1") == 0.5
        assert cfg.service_time_for("B2") == 2.5
