"""Integration tests for the simulation engine."""

import pytest

from repro.core.correctness import check_composite_correctness
from repro.simulator import ProgramConfig, SimulationConfig, simulate
from repro.simulator.metrics import Metrics
from repro.workloads.topologies import (
    fork_topology,
    join_topology,
    stack_topology,
)


def run(topology, protocol="cc", seed=0, clients=3, txns=5, **program_kw):
    cfg = SimulationConfig(
        topology=topology,
        protocol=protocol,
        clients=clients,
        transactions_per_client=txns,
        seed=seed,
        program=ProgramConfig(items_per_component=4, **program_kw),
    )
    return simulate(cfg)


class TestBasicRuns:
    def test_all_roots_complete(self):
        res = run(stack_topology(2))
        m = res.metrics
        assert m.commits + m.gave_up == 15

    def test_deterministic_given_seed(self):
        a = run(fork_topology(2), seed=11)
        b = run(fork_topology(2), seed=11)
        assert a.metrics.summary() == b.metrics.summary()
        assert (
            a.assembled.recorded.executions
            == b.assembled.recorded.executions
        )

    def test_different_seeds_differ(self):
        a = run(fork_topology(2), seed=1)
        b = run(fork_topology(2), seed=2)
        assert a.metrics.operations != b.metrics.operations or (
            a.assembled.recorded.executions
            != b.assembled.recorded.executions
        )

    def test_single_client_is_serial_and_correct(self):
        res = run(join_topology(2), protocol="sgt", clients=1, txns=6)
        assert res.metrics.commits == 6
        assert res.metrics.abort_rate == 0.0
        report = check_composite_correctness(res.assembled.recorded.system)
        assert report.correct

    def test_metrics_consistency(self):
        res = run(stack_topology(2), protocol="s2pl", seed=3)
        m = res.metrics
        assert m.attempts >= m.commits
        assert m.end_time > 0
        assert m.throughput > 0
        summary = m.summary()
        assert summary["commits"] == m.commits


class TestRecorderIntegration:
    def test_recorded_system_matches_topology(self):
        res = run(stack_topology(3))
        system = res.assembled.recorded.system
        assert set(system.schedules) <= {"L1", "L2", "L3"}
        assert system.order <= 3

    def test_committed_roots_counted(self):
        res = run(fork_topology(2))
        assert len(res.assembled.committed_roots) == res.metrics.commits

    def test_axiom_validity_of_cc_runs(self):
        res = run(join_topology(3), protocol="cc", seed=5)
        assert res.assembled.axiom_violation is None


class TestProtocolGuarantees:
    @pytest.mark.parametrize("protocol", ["cc", "s2pl"])
    @pytest.mark.parametrize(
        "topology",
        [stack_topology(2), fork_topology(3), join_topology(3)],
        ids=["stack", "fork", "join"],
    )
    def test_safe_protocols_always_comp_c(self, protocol, topology):
        for seed in range(3):
            res = run(topology, protocol=protocol, seed=seed, item_skew=0.9)
            if res.assembled is None:
                continue
            report = check_composite_correctness(
                res.assembled.recorded.system
            )
            assert report.correct, (protocol, seed)

    def test_sgt_violates_comp_c_on_joins(self):
        # The headline negative result: an uncoordinated optimistic
        # scheduler commits a non-Comp-C execution through the shared
        # server on at least one seed.
        violations = 0
        for seed in range(8):
            res = run(
                join_topology(3), protocol="sgt", seed=seed, item_skew=0.9,
                clients=4,
            )
            if res.assembled is None:
                continue
            if not check_composite_correctness(
                res.assembled.recorded.system
            ).correct:
                violations += 1
        assert violations > 0

    def test_mixed_protocols_per_component(self):
        cfg = SimulationConfig(
            topology=fork_topology(2),
            protocol={"F": "cc", "B1": "s2pl", "B2": "sgt"},
            clients=2,
            transactions_per_client=4,
            seed=0,
        )
        res = simulate(cfg)
        assert res.metrics.commits > 0


class TestMetricsUnit:
    def test_percentiles(self):
        m = Metrics(response_times=[1.0, 2.0, 3.0, 4.0])
        assert m.percentile_response_time(0) == 1.0
        assert m.percentile_response_time(100) == 4.0
        assert 2.0 <= m.percentile_response_time(50) <= 3.0

    def test_empty_metrics(self):
        m = Metrics()
        assert m.abort_rate == 0.0
        assert m.throughput == 0.0
        assert m.mean_response_time == 0.0
        assert m.percentile_response_time(95) == 0.0

    def test_singleton_percentile(self):
        assert Metrics(response_times=[5.0]).percentile_response_time(50) == 5.0
