"""Unit and integration tests for the pluggable retry policies."""

import random

import pytest

from repro.exceptions import SimulationError
from repro.simulator import SimulationConfig, simulate
from repro.simulator.faults import CrashWindow, FaultPlan
from repro.simulator.programs import ProgramConfig
from repro.simulator.retry import (
    POLICIES,
    DecorrelatedJitterBackoff,
    ExponentialBackoff,
    LinearBackoff,
    RetryPolicy,
    make_retry_policy,
)
from repro.workloads.topologies import stack_topology


class TestDelays:
    def test_linear_matches_legacy_formula(self):
        # the engine used to compute rng.random() * (backoff * attempt)
        # + 0.01 inline; LinearBackoff must reproduce it draw-for-draw
        policy = make_retry_policy("linear", base=3.0)
        rng_a, rng_b = random.Random(7), random.Random(7)
        for attempt in (1, 2, 5):
            expected = rng_b.random() * (3.0 * attempt) + 0.01
            assert policy.delay(attempt, rng_a) == expected

    def test_exponential_growth_and_cap(self):
        policy = ExponentialBackoff(base=2.0, cap=10.0)
        rng = random.Random(0)
        for attempt in range(1, 12):
            ceiling = min(10.0, 2.0 * 2 ** (attempt - 1))
            delay = policy.delay(attempt, rng)
            assert 0.01 <= delay <= ceiling + 0.01

    def test_decorrelated_jitter_bounds(self):
        policy = DecorrelatedJitterBackoff(base=1.0, cap=20.0)
        rng = random.Random(3)
        last = 0.0
        for attempt in range(1, 30):
            delay = policy.delay(attempt, rng, last)
            assert 1.0 <= delay <= 20.0
            assert delay <= max(last, 1.0) * 3.0
            last = delay

    def test_instance_passes_through(self):
        policy = LinearBackoff(base=9.0)
        assert make_retry_policy(policy) is policy

    def test_unknown_name_rejected(self):
        with pytest.raises(SimulationError):
            make_retry_policy("fibonacci")


class TestGiveUp:
    def test_global_attempt_budget(self):
        policy = LinearBackoff()
        assert policy.should_retry(1, 3, "protocol", 1)
        assert policy.should_retry(2, 3, "protocol", 2)
        assert not policy.should_retry(3, 3, "protocol", 3)

    def test_non_retryable_reason(self):
        policy = LinearBackoff(non_retryable={"component_down"})
        assert policy.should_retry(1, 10, "protocol", 1)
        assert not policy.should_retry(1, 10, "component_down", 1)

    def test_per_reason_budget(self):
        policy = LinearBackoff(reason_budgets={"timeout": 2})
        assert policy.should_retry(1, 10, "timeout", 1)
        assert not policy.should_retry(2, 10, "timeout", 2)
        # other reasons only see the global budget:
        assert policy.should_retry(5, 10, "protocol", 5)


class TestEngineIntegration:
    def _config(self, **kw):
        return SimulationConfig(
            topology=stack_topology(2),
            protocol="cc",
            clients=3,
            transactions_per_client=4,
            seed=2,
            program=ProgramConfig(items_per_component=3, item_skew=0.9),
            **kw,
        )

    @pytest.mark.parametrize("name", sorted(POLICIES))
    def test_every_policy_runs_and_is_deterministic(self, name):
        a = simulate(self._config(retry_policy=name))
        b = simulate(self._config(retry_policy=name))
        assert a.metrics.summary() == b.metrics.summary()
        assert a.metrics.commits + a.metrics.gave_up == 12

    def test_unknown_policy_rejected_at_config_time(self):
        with pytest.raises(SimulationError):
            self._config(retry_policy="fibonacci")

    def test_reason_aware_giveup_stops_hopeless_retries(self):
        # the only component is down for the whole run; a policy that
        # treats component_down as non-retryable gives up after one
        # attempt instead of burning the full budget
        plan = FaultPlan(crashes=(CrashWindow("L1", 0.0, 1e9),))
        topology = stack_topology(1)

        def run(policy: RetryPolicy):
            return simulate(
                SimulationConfig(
                    topology=topology,
                    protocol="cc",
                    clients=2,
                    transactions_per_client=2,
                    seed=0,
                    max_attempts=6,
                    faults=plan,
                    retry_policy=policy,
                )
            ).metrics

        stubborn = run(LinearBackoff(base=0.5))
        decisive = run(
            LinearBackoff(base=0.5, non_retryable={"component_down"})
        )
        assert stubborn.gave_up == 4 and decisive.gave_up == 4
        assert decisive.aborts_by_reason["component_down"] == 4
        assert stubborn.aborts_by_reason["component_down"] == 24
        assert decisive.giveups_by_reason == {"component_down": 4}
        assert decisive.retries_by_reason == {}
