"""Unit tests for program generation."""

import random

from repro.simulator.programs import (
    AccessStep,
    CallStep,
    ProgramConfig,
    pick_item,
    random_program,
)
from repro.workloads.topologies import fork_topology, stack_topology


class TestPickItem:
    def test_items_are_component_local(self):
        rng = random.Random(0)
        cfg = ProgramConfig(items_per_component=4)
        item = pick_item("B1", cfg, rng)
        assert item.startswith("B1:k")

    def test_skew_prefers_hot_items(self):
        rng = random.Random(0)
        cfg = ProgramConfig(items_per_component=8, item_skew=2.0)
        picks = [pick_item("C", cfg, rng) for _ in range(500)]
        hot = picks.count("C:k0")
        cold = picks.count("C:k7")
        assert hot > cold * 3

    def test_uniform_when_no_skew(self):
        rng = random.Random(0)
        cfg = ProgramConfig(items_per_component=4, item_skew=0.0)
        picks = {pick_item("C", cfg, rng) for _ in range(200)}
        assert len(picks) == 4


class TestRandomProgram:
    def test_leaf_component_gets_accesses(self):
        rng = random.Random(1)
        topo = stack_topology(1)
        program = random_program(topo, "L1", ProgramConfig(), rng)
        assert all(isinstance(s, AccessStep) for s in program.steps)
        assert program.access_count() >= 1

    def test_internal_component_delegates(self):
        rng = random.Random(1)
        topo = stack_topology(2)
        program = random_program(topo, "L2", ProgramConfig(), rng)
        assert all(isinstance(s, CallStep) for s in program.steps)
        assert program.call_count() >= 1
        for call in program.steps:
            assert call.component == "L1"

    def test_fork_calls_hit_branches(self):
        rng = random.Random(2)
        topo = fork_topology(3)
        program = random_program(
            topo, "F", ProgramConfig(calls_per_transaction=(4, 4)), rng
        )
        targets = {call.component for call in program.steps}
        assert targets <= {"B1", "B2", "B3"}

    def test_local_access_probability(self):
        rng = random.Random(3)
        topo = stack_topology(2)
        cfg = ProgramConfig(
            local_access_probability=1.0, calls_per_transaction=(2, 2)
        )
        program = random_program(topo, "L2", cfg, rng)
        assert all(isinstance(s, AccessStep) for s in program.steps)

    def test_deterministic_for_seed(self):
        topo = fork_topology(2)
        a = random_program(topo, "F", ProgramConfig(), random.Random(5))
        b = random_program(topo, "F", ProgramConfig(), random.Random(5))
        assert a.component == b.component
        assert a.access_count() == b.access_count()
        assert a.call_count() == b.call_count()
