"""Tests for the named TP-monitor scenario."""

import random

import pytest

from repro.core.correctness import check_composite_correctness
from repro.criteria import is_fork
from repro.exceptions import WorkloadError
from repro.simulator import SimulationConfig, simulate
from repro.simulator.programs import AccessStep, CallStep
from repro.simulator.scenarios import (
    audit_program,
    order_program,
    payment_program,
    tp_monitor_mix,
    tp_monitor_topology,
)


class TestPrograms:
    def test_payment_shape(self):
        program = payment_program(random.Random(0))
        assert program.component == "TPM"
        assert [s.component for s in program.steps] == ["AccountsDB", "LogDB"]
        accounts_call = program.steps[0]
        modes = [a.mode for a in accounts_call.steps]
        assert modes == ["r", "w", "r", "w"]

    def test_order_touches_three_managers(self):
        program = order_program(random.Random(1))
        assert [s.component for s in program.steps] == [
            "StockDB",
            "AccountsDB",
            "LogDB",
        ]

    def test_audit_is_read_only(self):
        program = audit_program(random.Random(2))
        for call in program.steps:
            assert all(a.mode == "r" for a in call.steps)

    def test_items_are_component_local(self):
        program = payment_program(random.Random(3))
        for call in program.steps:
            assert isinstance(call, CallStep)
            for access in call.steps:
                assert isinstance(access, AccessStep)
                assert access.item.startswith(call.component + ":")


class TestMix:
    def test_mix_weights_respected(self):
        factory = tp_monitor_mix(payment=1.0, order=0.0, audit=0.0)
        rng = random.Random(0)
        topo = tp_monitor_topology()
        for _ in range(5):
            program = factory(topo, "TPM", rng)
            assert [s.component for s in program.steps][-1] == "LogDB"

    def test_zero_mass_rejected(self):
        with pytest.raises(WorkloadError):
            tp_monitor_mix(payment=0, order=0, audit=0)

    def test_wrong_home_rejected(self):
        factory = tp_monitor_mix()
        with pytest.raises(WorkloadError):
            factory(tp_monitor_topology(), "AccountsDB", random.Random(0))


class TestScenarioRuns:
    def test_topology_is_a_fork(self):
        topo = tp_monitor_topology()
        assert topo.order == 2
        assert topo.root_schedules == ["TPM"]

    @pytest.mark.parametrize("protocol", ["cc", "s2pl"])
    def test_safe_protocols_run_the_mix_correctly(self, protocol):
        result = simulate(
            SimulationConfig(
                topology=tp_monitor_topology(),
                protocol=protocol,
                clients=4,
                transactions_per_client=6,
                seed=3,
                program_factory=tp_monitor_mix(),
            )
        )
        metrics = result.metrics
        assert metrics.commits + metrics.gave_up == 24
        recorded = result.assembled.recorded
        assert is_fork(recorded.system) or recorded.system.order <= 2
        assert check_composite_correctness(recorded.system).correct

    def test_mix_is_deterministic_per_seed(self):
        def run():
            return simulate(
                SimulationConfig(
                    topology=tp_monitor_topology(),
                    protocol="sgt",
                    clients=3,
                    transactions_per_client=5,
                    seed=11,
                    program_factory=tp_monitor_mix(),
                )
            ).metrics.summary()

        assert run() == run()
