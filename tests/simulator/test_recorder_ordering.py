"""The recorder's tie-breaking contract: equal timestamps fall back to
global recording order (``seq``), deterministically, everywhere.

Simulated clocks tie constantly — a scheduler granting a batch of
accesses in one tick stamps them all with the same time — so without
the ``seq`` fallback, assembled per-component sequences (and hence
conflicts, observed orders, verdicts, and event logs) would depend on
list-sort incidentals.  This is the regression suite for the
``_OpRecord.sort_key`` bugfix.
"""

from repro.io import dumps
from repro.simulator.recorder import ExecutionRecorder, _OpRecord


def _tie_heavy_recorder(rounds=6):
    """Two roots interleaving accesses on one component, *every*
    access stamped with the same clock value."""
    rec = ExecutionRecorder()
    for root, txn in (("R1", "T1"), ("R2", "T2")):
        rec.begin_attempt(root)
        rec.begin_transaction(root, txn, "C")
    for n in range(rounds):
        rec.record_access("R1", "C", "T1", f"a{n}", item="x",
                          mode="w" if n % 2 else "r", time=1.0)
        rec.record_access("R2", "C", "T2", f"b{n}", item="x",
                          mode="r" if n % 2 else "w", time=1.0)
    rec.commit_root("R1")
    rec.commit_root("R2")
    return rec


def test_sort_key_breaks_ties_by_seq():
    a = _OpRecord("C", "T", "a", time=1.0, seq=7)
    b = _OpRecord("C", "T", "b", time=1.0, seq=3)
    c = _OpRecord("C", "T", "c", time=0.5, seq=9)
    assert sorted([a, b, c], key=lambda r: r.sort_key) == [c, b, a]


def test_all_equal_times_assemble_in_recording_order():
    run = _tie_heavy_recorder()
    sequence = run.assemble().recorded.executions["C"]
    # recording order interleaves a0 b0 a1 b1 ...
    assert sequence == [
        op for n in range(6) for op in (f"a{n}", f"b{n}")
    ]


def test_tie_heavy_assembly_is_deterministic():
    """Byte-identical recorded executions across repeated assemblies
    and across independently rebuilt recorders."""
    baseline = dumps(_tie_heavy_recorder().assemble().recorded)
    for _ in range(5):
        rec = _tie_heavy_recorder()
        assert dumps(rec.assemble().recorded) == baseline
        # assembling twice does not perturb the order either
        assert dumps(rec.assemble().recorded) == baseline


def test_committed_events_follow_recording_order():
    """The streaming export inherits the same deterministic order:
    arrival events appear in seq order, twice in a row."""
    rec = _tie_heavy_recorder()
    events = rec.committed_events()
    arrivals = [e.op for e in events if e.kind in ("access", "call")]
    assert arrivals == [
        op for n in range(6) for op in (f"a{n}", f"b{n}")
    ]
    assert rec.committed_events() == events
