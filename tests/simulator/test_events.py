"""Unit tests for the event queue."""

import pytest

from repro.simulator.events import EventQueue


class TestEventQueue:
    def test_fires_in_time_order(self):
        q = EventQueue()
        log = []
        q.schedule(3.0, lambda: log.append("c"))
        q.schedule(1.0, lambda: log.append("a"))
        q.schedule(2.0, lambda: log.append("b"))
        q.run()
        assert log == ["a", "b", "c"]

    def test_ties_fire_in_schedule_order(self):
        q = EventQueue()
        log = []
        for name in "abc":
            q.schedule(1.0, lambda n=name: log.append(n))
        q.run()
        assert log == ["a", "b", "c"]

    def test_now_advances(self):
        q = EventQueue()
        seen = []
        q.schedule(2.5, lambda: seen.append(q.now))
        q.run()
        assert seen == [2.5]

    def test_nested_scheduling(self):
        q = EventQueue()
        log = []

        def first():
            log.append(("first", q.now))
            q.schedule(1.0, lambda: log.append(("second", q.now)))

        q.schedule(1.0, first)
        q.run()
        assert log == [("first", 1.0), ("second", 2.0)]

    def test_cancellation(self):
        q = EventQueue()
        log = []
        handle = q.schedule(1.0, lambda: log.append("x"))
        handle.cancel()
        q.schedule(2.0, lambda: log.append("y"))
        assert q.run() == 1
        assert log == ["y"]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().schedule(-1.0, lambda: None)

    def test_max_events(self):
        q = EventQueue()

        def rearm():
            q.schedule(1.0, rearm)

        q.schedule(1.0, rearm)
        assert q.run(max_events=5) == 5

    def test_len_ignores_cancelled(self):
        q = EventQueue()
        h = q.schedule(1.0, lambda: None)
        q.schedule(2.0, lambda: None)
        h.cancel()
        assert len(q) == 1
        assert not q.empty()
