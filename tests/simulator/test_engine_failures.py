"""Coverage for the engine's failure paths: config validation, the
deadlock-timeout abort, the stale-event guard after an abort, and the
gave-up / max-attempts path — none of which the happy-path suites
exercise."""

import pytest

from repro.exceptions import SimulationError
from repro.simulator import Simulation, SimulationConfig, simulate
from repro.simulator.faults import CrashWindow, FaultPlan
from repro.simulator.programs import AccessStep, Program
from repro.workloads.topologies import stack_topology


def single_item_factory(topology, home, rng):
    """Every root writes the same hot item — guaranteed conflicts."""
    return Program(component=home, steps=[AccessStep(f"{home}:x", "w")])


def two_item_factory(topology, home, rng):
    return Program(
        component=home,
        steps=[AccessStep(f"{home}:x", "w"), AccessStep(f"{home}:y", "w")],
    )


class TestConfigValidation:
    def _base(self, **kw):
        return SimulationConfig(topology=stack_topology(1), **kw)

    def test_valid_config_passes(self):
        self._base()  # no exception

    @pytest.mark.parametrize(
        "kw",
        [
            {"max_attempts": 0},
            {"max_attempts": -3},
            {"retry_backoff": -1.0},
            {"deadlock_timeout": -0.5},
            {"think_time": -2.0},
            {"protocol": "paxos"},
            {"protocol": {"L1": "nope"}},
            {"retry_policy": "fibonacci"},
            {"arrival": "sideways"},
        ],
        ids=lambda kw: repr(kw),
    )
    def test_bad_values_rejected(self, kw):
        with pytest.raises(SimulationError):
            self._base(**kw)

    def test_error_message_names_the_protocol(self):
        with pytest.raises(SimulationError, match="paxos"):
            self._base(protocol="paxos")
        with pytest.raises(SimulationError, match="L1"):
            self._base(protocol={"L1": "nope"})


class TestTimeoutAbortPath:
    def _run(self, max_attempts=25):
        # One hot item, huge service times, a tiny deadlock timeout:
        # whoever grabs the lock first holds it for ages, so the other
        # client's attempts block and time out (no waits-for cycle, so
        # s2pl's deadlock detector stays silent — this is purely the
        # timeout path).
        return simulate(
            SimulationConfig(
                topology=stack_topology(1),
                protocol="s2pl",
                clients=2,
                transactions_per_client=1,
                seed=0,
                think_time=0.0,
                mean_service_time=5000.0,
                deadlock_timeout=0.5,
                max_attempts=max_attempts,
                program_factory=single_item_factory,
            )
        )

    def test_blocked_roots_time_out(self):
        m = self._run().metrics
        assert m.timeout_aborts > 0
        assert m.aborts_by_reason["timeout"] == m.timeout_aborts
        assert m.commits + m.gave_up == 2

    def test_gave_up_after_max_attempts(self):
        m = self._run(max_attempts=3).metrics
        assert m.gave_up == 1
        assert m.commits == 1
        assert m.timeout_aborts == 3  # every attempt of the loser
        assert m.retries_by_reason == {"timeout": 2}
        assert m.giveups_by_reason == {"timeout": 1}
        # the satellite fix: the gave-up root is visible in the rates
        assert m.root_failure_rate == pytest.approx(0.5)
        summary = m.summary()
        assert summary["gave_up"] == 1
        assert summary["root_failure_rate"] == pytest.approx(0.5)

    def test_gave_up_roots_counted_in_attempts(self):
        m = self._run(max_attempts=3).metrics
        assert m.attempts == m.commits + m.total_aborts
        assert m.abort_rate == pytest.approx(
            m.total_aborts / m.attempts
        )


class TestStaleEventGuard:
    def test_crash_invalidates_inflight_completions(self):
        # The single root's first access is in service (mean 10) when
        # the component crashes at t=1: the attempt dies, but its
        # completion event is still queued.  The epoch guard must let
        # it fire harmlessly, and the retry must commit cleanly.
        sim = Simulation(
            SimulationConfig(
                topology=stack_topology(1),
                protocol="cc",
                clients=1,
                transactions_per_client=1,
                seed=0,
                think_time=0.0,
                mean_service_time=10.0,
                max_attempts=10,
                program_factory=two_item_factory,
                faults=FaultPlan(crashes=(CrashWindow("L1", 1.0, 2.0),)),
            )
        )
        res = sim.run()
        m = res.metrics
        assert m.aborts_by_reason.get("crash", 0) >= 1
        assert m.commits == 1
        # completions of dead epochs never count (the crashed attempt
        # may have finished some accesses *before* the crash — those
        # do, legitimately):
        assert 2 <= m.operations <= 2 + 2 * m.total_aborts
        # only the committed attempt appears in the assembled execution:
        assert len(res.assembled.recorded.executions["L1"]) == 2
        # the crashed attempt's recorded work was discarded:
        assert sim.recorder.discarded_attempts >= 1
        assert sim.recorder.discarded_operations >= 1

    def test_stale_completion_does_not_advance_dead_frame(self):
        # surgical variant: drive the queue manually past the abort and
        # verify the dead attempt's completion callback is a no-op
        sim = Simulation(
            SimulationConfig(
                topology=stack_topology(1),
                protocol="cc",
                clients=1,
                transactions_per_client=1,
                seed=0,
                think_time=0.0,
                mean_service_time=10.0,
                program_factory=two_item_factory,
            )
        )
        sim._remaining[0] = 1  # run() normally seeds the client loop
        sim._next_root(0)
        (root,) = sim._roots.values()
        frame = root.top
        index_before = frame.index
        operations_before = sim.metrics.operations
        sim._abort_root(root, "protocol")  # bumps the epoch
        # the completion event scheduled for the first access is still
        # in the queue; run it out
        sim.queue.run()
        assert frame.index == index_before  # the dead frame never moved
        # the retry re-ran the program to commit; the stale completion
        # added nothing beyond the committed attempt's two operations
        assert sim.metrics.operations == operations_before + 2
        assert sim.metrics.commits == 1


class TestCrashVictimSelection:
    def test_uninvolved_roots_survive_a_crash(self):
        # two clients on a 2-stack; L1 crashes briefly.  Roots that
        # never touched L1 at crash time must keep their attempt.
        res = simulate(
            SimulationConfig(
                topology=stack_topology(2),
                protocol="cc",
                clients=3,
                transactions_per_client=4,
                seed=5,
                faults=FaultPlan(crashes=(CrashWindow("L1", 3.0, 1.0),)),
            )
        )
        m = res.metrics
        assert m.commits + m.gave_up == 12
        # crash aborts are bounded by the roots actually in flight
        assert m.aborts_by_reason.get("crash", 0) <= 3
