"""Tests for fork-join parallel subtransaction execution."""

import random

import pytest

from repro.core.correctness import check_composite_correctness
from repro.core.reduction import reduce_to_roots
from repro.simulator import ProgramConfig, SimulationConfig, simulate
from repro.simulator.programs import CallStep, pick_item, random_program
from repro.workloads.topologies import (
    fork_topology,
    join_topology,
    stack_topology,
)

PARALLEL = ProgramConfig(
    items_per_component=8,
    item_skew=0.5,
    calls_per_transaction=(2, 3),
    parallel_calls=True,
)


def run(topology, protocol="cc", seed=0, clients=3, txns=5, program=PARALLEL):
    return simulate(
        SimulationConfig(
            topology=topology,
            protocol=protocol,
            clients=clients,
            transactions_per_client=txns,
            seed=seed,
            program=program,
        )
    )


class TestLanePartitioning:
    def test_lanes_restrict_item_space(self):
        rng = random.Random(0)
        cfg = ProgramConfig(items_per_component=8)
        low = {pick_item("C", cfg, rng, lane=(0.0, 0.5)) for _ in range(100)}
        high = {pick_item("C", cfg, rng, lane=(0.5, 1.0)) for _ in range(100)}
        assert not (low & high)

    def test_tiny_lane_still_yields_an_item(self):
        rng = random.Random(0)
        cfg = ProgramConfig(items_per_component=2)
        item = pick_item("C", cfg, rng, lane=(0.9, 1.0))
        assert item.startswith("C:k")

    def test_parallel_siblings_use_disjoint_items(self):
        rng = random.Random(3)
        topo = fork_topology(1)  # single branch: collisions would be easy
        cfg = ProgramConfig(
            items_per_component=8,
            calls_per_transaction=(3, 3),
            accesses_per_transaction=(3, 3),
            parallel_calls=True,
        )
        program = random_program(topo, "F", cfg, rng)
        item_sets = []
        for call in program.steps:
            assert isinstance(call, CallStep)
            item_sets.append(
                {step.item for step in call.steps}
            )
        for i, a in enumerate(item_sets):
            for b in item_sets[i + 1:]:
                assert not (a & b)


class TestParallelExecution:
    def test_all_roots_terminate(self):
        res = run(stack_topology(2))
        m = res.metrics
        assert m.commits + m.gave_up == 15

    def test_deterministic(self):
        a = run(join_topology(2), seed=9)
        b = run(join_topology(2), seed=9)
        assert a.metrics.summary() == b.metrics.summary()

    @pytest.mark.parametrize("protocol", ["cc", "s2pl"])
    @pytest.mark.parametrize(
        "topology",
        [stack_topology(2), fork_topology(3), join_topology(3)],
        ids=["stack", "fork", "join"],
    )
    def test_safe_protocols_stay_comp_c_under_parallelism(
        self, protocol, topology
    ):
        for seed in range(3):
            res = run(topology, protocol=protocol, seed=seed)
            if res.assembled is None:
                continue
            assert check_composite_correctness(
                res.assembled.recorded.system
            ).correct, (protocol, seed)

    def test_parallelism_improves_response_time(self):
        sequential = ProgramConfig(
            items_per_component=8,
            item_skew=0.5,
            calls_per_transaction=(3, 3),
            parallel_calls=False,
        )
        parallel = ProgramConfig(
            items_per_component=8,
            item_skew=0.5,
            calls_per_transaction=(3, 3),
            parallel_calls=True,
        )
        seq = run(fork_topology(3), protocol="sgt", program=sequential, clients=1, txns=8)
        par = run(fork_topology(3), protocol="sgt", program=parallel, clients=1, txns=8)
        assert par.metrics.mean_response_time < seq.metrics.mean_response_time

    def test_recorded_program_order_is_partial(self):
        # Parallel sibling calls must NOT be weakly ordered in the
        # recorded transaction; sequential segments must be.
        res = run(fork_topology(3), clients=1, txns=3, seed=2)
        system = res.assembled.recorded.system
        found_parallel_pair = False
        for sname, schedule in system.schedules.items():
            for txn in schedule.transactions.values():
                ops = txn.operations
                for i, a in enumerate(ops):
                    for b in ops[i + 1:]:
                        if not txn.weakly_ordered(a, b) and not txn.weakly_ordered(b, a):
                            found_parallel_pair = True
        assert found_parallel_pair

    def test_verdict_checkable_and_certified(self):
        for seed in range(3):
            res = run(join_topology(3), protocol="sgt", seed=seed, clients=4)
            if res.assembled is None:
                continue
            result = reduce_to_roots(res.assembled.recorded.system)
            assert result.succeeded in (True, False)
